//! The complete accelerator description.

use crate::memory::{HierarchyError, MemoryHierarchy, MemoryLevel};
use crate::operand::Operand;
use crate::pe_array::{PeArray, SpatialUnrolling};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors produced while building an [`Accelerator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// The memory hierarchy is invalid.
    Hierarchy(HierarchyError),
    /// No PE array was specified.
    MissingPeArray,
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::Hierarchy(e) => write!(f, "invalid memory hierarchy: {e}"),
            ArchError::MissingPeArray => write!(f, "accelerator has no PE array"),
        }
    }
}

impl std::error::Error for ArchError {}

impl From<HierarchyError> for ArchError {
    fn from(e: HierarchyError) -> Self {
        ArchError::Hierarchy(e)
    }
}

/// A DNN accelerator: PE array + memory hierarchy.
///
/// ```
/// use defines_arch::{AcceleratorBuilder, MemoryLevel, Operand, SpatialUnrolling};
/// use defines_workload::Dim;
///
/// let acc = AcceleratorBuilder::new("my-accel")
///     .pe_array(SpatialUnrolling::from_pairs([(Dim::K, 16), (Dim::C, 16)]), 0.5)
///     .add_level(MemoryLevel::sram("LB", 64 * 1024, Operand::ALL))
///     .add_level(MemoryLevel::sram("GB", 1024 * 1024, Operand::ALL))
///     .build()?;
/// assert_eq!(acc.pe_array().total_macs(), 256);
/// assert_eq!(acc.hierarchy().len(), 3); // LB, GB, DRAM (added automatically)
/// # Ok::<(), defines_arch::ArchError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Accelerator {
    name: String,
    pe_array: PeArray,
    hierarchy: MemoryHierarchy,
}

impl Accelerator {
    /// The accelerator's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The PE array.
    pub fn pe_array(&self) -> &PeArray {
        &self.pe_array
    }

    /// The memory hierarchy.
    pub fn hierarchy(&self) -> &MemoryHierarchy {
        &self.hierarchy
    }

    /// Returns a copy of this accelerator with a different name.
    pub fn renamed(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// A stable structural fingerprint of the accelerator: the name, the PE
    /// array and every memory level's parameters are hashed. Two accelerators
    /// with the same fingerprint behave identically under the cost model, so
    /// the fingerprint can key cross-accelerator memoization caches (the
    /// mapping cache of `defines-mapping`).
    pub fn fingerprint(&self) -> u64 {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h = DefaultHasher::new();
        self.name.hash(&mut h);
        for (dim, factor) in self.pe_array.unrolling().iter() {
            (dim as u64, factor).hash(&mut h);
        }
        self.pe_array.mac_energy_pj().to_bits().hash(&mut h);
        for level in self.hierarchy.levels() {
            level.name().hash(&mut h);
            level.capacity_bytes().hash(&mut h);
            level.read_energy_pj_per_byte().to_bits().hash(&mut h);
            level.write_energy_pj_per_byte().to_bits().hash(&mut h);
            level.read_bw_bytes_per_cycle().to_bits().hash(&mut h);
            level.write_bw_bytes_per_cycle().to_bits().hash(&mut h);
            level.is_dram().hash(&mut h);
            for operand in crate::operand::Operand::ALL {
                level.serves(operand).hash(&mut h);
            }
        }
        h.finish()
    }
}

/// Builder for [`Accelerator`].
///
/// Levels are added innermost-first; the DRAM level is appended automatically
/// by [`AcceleratorBuilder::build`] unless one was added explicitly.
#[derive(Debug, Clone)]
pub struct AcceleratorBuilder {
    name: String,
    pe_array: Option<PeArray>,
    levels: Vec<MemoryLevel>,
}

impl AcceleratorBuilder {
    /// Starts building an accelerator with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            pe_array: None,
            levels: Vec::new(),
        }
    }

    /// Sets the PE array from a spatial unrolling and per-MAC energy (pJ).
    pub fn pe_array(mut self, unrolling: SpatialUnrolling, mac_energy_pj: f64) -> Self {
        self.pe_array = Some(PeArray::new(unrolling, mac_energy_pj));
        self
    }

    /// Adds a memory level (innermost levels first).
    pub fn add_level(mut self, level: MemoryLevel) -> Self {
        self.levels.push(level);
        self
    }

    /// Finalizes the accelerator.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::MissingPeArray`] if no PE array was set, or a
    /// hierarchy validation error (every operand must be served and the
    /// outermost level must be DRAM — appended automatically when absent).
    pub fn build(self) -> Result<Accelerator, ArchError> {
        let pe_array = self.pe_array.ok_or(ArchError::MissingPeArray)?;
        let mut levels = self.levels;
        if levels.last().map(|l| !l.is_dram()).unwrap_or(true) {
            levels.push(MemoryLevel::dram());
        }
        let hierarchy = MemoryHierarchy::new(levels)?;
        Ok(Accelerator {
            name: self.name,
            pe_array,
            hierarchy,
        })
    }
}

/// Convenience description of how much on-chip capacity each operand can use,
/// useful for reporting (Table I(a)-style summaries).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OperandCapacity {
    /// Total on-chip bytes in levels serving weights.
    pub weight_bytes: u64,
    /// Total on-chip bytes in levels serving inputs.
    pub input_bytes: u64,
    /// Total on-chip bytes in levels serving outputs.
    pub output_bytes: u64,
}

impl OperandCapacity {
    /// Computes the per-operand on-chip capacity of an accelerator.
    pub fn of(acc: &Accelerator) -> Self {
        let sum = |op: Operand| -> u64 {
            acc.hierarchy()
                .levels_for(op)
                .filter_map(|(_, l)| l.capacity_bytes())
                .sum()
        };
        Self {
            weight_bytes: sum(Operand::Weight),
            input_bytes: sum(Operand::Input),
            output_bytes: sum(Operand::Output),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defines_workload::Dim;

    #[test]
    fn builder_appends_dram() {
        let acc = AcceleratorBuilder::new("a")
            .pe_array(SpatialUnrolling::from_pairs([(Dim::K, 8)]), 0.5)
            .add_level(MemoryLevel::sram("LB", 1024, Operand::ALL))
            .build()
            .unwrap();
        assert!(acc.hierarchy().levels().last().unwrap().is_dram());
        assert_eq!(acc.name(), "a");
    }

    #[test]
    fn builder_requires_pe_array() {
        let err = AcceleratorBuilder::new("a")
            .add_level(MemoryLevel::sram("LB", 1024, Operand::ALL))
            .build()
            .unwrap_err();
        assert_eq!(err, ArchError::MissingPeArray);
    }

    #[test]
    fn builder_propagates_hierarchy_errors() {
        // Only weights served on chip is fine (DRAM serves everything), but a
        // hierarchy where DRAM is placed first then another level follows is not.
        let err = AcceleratorBuilder::new("a")
            .pe_array(SpatialUnrolling::from_pairs([(Dim::K, 8)]), 0.5)
            .add_level(MemoryLevel::dram())
            .add_level(MemoryLevel::sram("LB", 1024, Operand::ALL))
            .build()
            .unwrap_err();
        assert!(matches!(err, ArchError::Hierarchy(_)));
    }

    #[test]
    fn operand_capacity_summary() {
        let acc = AcceleratorBuilder::new("a")
            .pe_array(SpatialUnrolling::from_pairs([(Dim::K, 8)]), 0.5)
            .add_level(MemoryLevel::sram("LB_W", 64 * 1024, [Operand::Weight]))
            .add_level(MemoryLevel::sram(
                "LB_IO",
                32 * 1024,
                [Operand::Input, Operand::Output],
            ))
            .build()
            .unwrap();
        let cap = OperandCapacity::of(&acc);
        assert_eq!(cap.weight_bytes, 64 * 1024);
        assert_eq!(cap.input_bytes, 32 * 1024);
        assert_eq!(cap.output_bytes, 32 * 1024);
    }

    #[test]
    fn fingerprint_is_stable_and_discriminating() {
        let build = |mac_pj: f64| {
            AcceleratorBuilder::new("a")
                .pe_array(SpatialUnrolling::from_pairs([(Dim::K, 8)]), mac_pj)
                .add_level(MemoryLevel::sram("LB", 1024, Operand::ALL))
                .build()
                .unwrap()
        };
        let a = build(0.5);
        assert_eq!(a.fingerprint(), build(0.5).fingerprint());
        assert_ne!(a.fingerprint(), build(0.6).fingerprint());
        assert_ne!(a.fingerprint(), a.clone().renamed("b").fingerprint());
    }

    #[test]
    fn renamed_keeps_structure() {
        let acc = AcceleratorBuilder::new("a")
            .pe_array(SpatialUnrolling::from_pairs([(Dim::K, 8)]), 0.5)
            .add_level(MemoryLevel::sram("LB", 1024, Operand::ALL))
            .build()
            .unwrap();
        let b = acc.clone().renamed("b");
        assert_eq!(b.name(), "b");
        assert_eq!(b.hierarchy(), acc.hierarchy());
    }
}
