//! Processing-element array and spatial unrolling.

use defines_workload::{Dim, LayerDims};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// The spatial unrolling of a PE array: which loop dimensions are parallelized
/// and by how much.
///
/// In the paper's Table I(a) notation, `K 32 | C 2 | OX 4 | OY 4` means 32
/// output channels, 2 input channels and a 4×4 output pixel patch are computed
/// in parallel every cycle (1024 MACs total).
///
/// ```
/// use defines_arch::SpatialUnrolling;
/// use defines_workload::Dim;
///
/// let u = SpatialUnrolling::from_pairs([(Dim::K, 32), (Dim::C, 2), (Dim::OX, 4), (Dim::OY, 4)]);
/// assert_eq!(u.total(), 1024);
/// assert_eq!(u.factor(Dim::K), 32);
/// assert_eq!(u.factor(Dim::FY), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SpatialUnrolling {
    factors: BTreeMap<Dim, u64>,
}

impl SpatialUnrolling {
    /// Creates an unrolling from `(dimension, factor)` pairs. Factors of 1 are
    /// dropped.
    pub fn from_pairs(pairs: impl IntoIterator<Item = (Dim, u64)>) -> Self {
        let factors = pairs.into_iter().filter(|&(_, f)| f > 1).collect();
        Self { factors }
    }

    /// The unrolling factor for a dimension (1 when not unrolled).
    pub fn factor(&self, dim: Dim) -> u64 {
        self.factors.get(&dim).copied().unwrap_or(1)
    }

    /// The total degree of parallelism (product of all factors).
    pub fn total(&self) -> u64 {
        self.factors.values().product()
    }

    /// Iterates over `(dimension, factor)` pairs with factor > 1.
    pub fn iter(&self) -> impl Iterator<Item = (Dim, u64)> + '_ {
        self.factors.iter().map(|(&d, &f)| (d, f))
    }

    /// The spatial utilization of the array for a layer: the fraction of MACs
    /// doing useful work each cycle, accounting for loop bounds that are
    /// smaller than or not divisible by the unrolling factors.
    ///
    /// For every unrolled dimension `d` with factor `u` and layer bound `n`,
    /// the per-dimension utilization is `n / (u * ceil(n / u))`; the total is
    /// the product over dimensions.
    pub fn utilization(&self, dims: &LayerDims) -> f64 {
        let mut util = 1.0;
        for (dim, factor) in self.iter() {
            let n = dims.size(dim).max(1);
            let ceil = n.div_ceil(factor);
            util *= n as f64 / (factor * ceil) as f64;
        }
        util
    }

    /// Spatial data-reuse factor for an operand class: how many MACs share one
    /// fetched element of that operand per cycle. This equals the product of
    /// the unrolling factors of dimensions *irrelevant* to the operand.
    pub fn spatial_reuse(&self, relevant: &[Dim]) -> u64 {
        self.iter()
            .filter(|(d, _)| !relevant.contains(d))
            .map(|(_, f)| f)
            .product::<u64>()
            .max(1)
    }
}

impl fmt::Display for SpatialUnrolling {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let parts: Vec<String> = self.iter().map(|(d, u)| format!("{d} {u}")).collect();
        f.write_str(&parts.join(" | "))
    }
}

/// A MAC array with a fixed spatial unrolling.
///
/// ```
/// use defines_arch::{PeArray, SpatialUnrolling};
/// use defines_workload::Dim;
///
/// let pe = PeArray::new(SpatialUnrolling::from_pairs([(Dim::K, 32), (Dim::C, 32)]), 0.5);
/// assert_eq!(pe.total_macs(), 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeArray {
    unrolling: SpatialUnrolling,
    mac_energy_pj: f64,
}

impl PeArray {
    /// Creates a PE array with the given unrolling and per-MAC energy in pJ.
    pub fn new(unrolling: SpatialUnrolling, mac_energy_pj: f64) -> Self {
        Self {
            unrolling,
            mac_energy_pj,
        }
    }

    /// The spatial unrolling.
    pub fn unrolling(&self) -> &SpatialUnrolling {
        &self.unrolling
    }

    /// The number of MAC units.
    pub fn total_macs(&self) -> u64 {
        self.unrolling.total()
    }

    /// The energy of one MAC operation in pJ.
    pub fn mac_energy_pj(&self) -> f64 {
        self.mac_energy_pj
    }

    /// Ideal compute cycles for `macs` MAC operations on a layer with the
    /// given dimensions, accounting for spatial under-utilization.
    pub fn compute_cycles(&self, macs: u64, dims: &LayerDims) -> f64 {
        let util = self.unrolling.utilization(dims).max(1e-9);
        macs as f64 / (self.total_macs() as f64 * util)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta_unroll() -> SpatialUnrolling {
        SpatialUnrolling::from_pairs([(Dim::K, 32), (Dim::C, 2), (Dim::OX, 4), (Dim::OY, 4)])
    }

    #[test]
    fn total_and_factor() {
        let u = meta_unroll();
        assert_eq!(u.total(), 1024);
        assert_eq!(u.factor(Dim::OX), 4);
        assert_eq!(u.factor(Dim::B), 1);
    }

    #[test]
    fn utilization_full_when_divisible() {
        let u = meta_unroll();
        let dims = LayerDims::conv(64, 4, 8, 8, 3, 3);
        assert!((u.utilization(&dims) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn utilization_drops_for_tiny_tiles() {
        let u = meta_unroll();
        // A 1x1 output tile wastes the OX4 x OY4 unrolling: utilization 1/16.
        let dims = LayerDims::conv(64, 4, 1, 1, 3, 3);
        let util = u.utilization(&dims);
        assert!((util - 1.0 / 16.0).abs() < 1e-12, "util = {util}");
    }

    #[test]
    fn utilization_handles_non_divisible_bounds() {
        let u = SpatialUnrolling::from_pairs([(Dim::K, 32)]);
        let dims = LayerDims::conv(56, 1, 8, 8, 3, 3);
        // 56 over unroll 32 needs 2 passes of 32 slots: 56/64.
        assert!((u.utilization(&dims) - 56.0 / 64.0).abs() < 1e-12);
    }

    #[test]
    fn spatial_reuse_by_operand() {
        let u = meta_unroll();
        // Weights are irrelevant to OX, OY: reuse 16.
        assert_eq!(u.spatial_reuse(&[Dim::K, Dim::C, Dim::FX, Dim::FY]), 16);
        // Outputs are irrelevant to C, FX, FY: reuse 2.
        assert_eq!(u.spatial_reuse(&[Dim::K, Dim::OX, Dim::OY, Dim::B]), 2);
        // Inputs are irrelevant to K: reuse 32.
        assert_eq!(
            u.spatial_reuse(&[Dim::C, Dim::OX, Dim::OY, Dim::FX, Dim::FY, Dim::B]),
            32
        );
    }

    #[test]
    fn compute_cycles_scale_inverse_with_utilization() {
        let pe = PeArray::new(meta_unroll(), 0.5);
        let full = LayerDims::conv(32, 2, 4, 4, 1, 1);
        let macs = full.total_macs();
        assert!((pe.compute_cycles(macs, &full) - 1.0).abs() < 1e-9);
        let tiny = LayerDims::conv(32, 2, 1, 1, 1, 1);
        assert!(pe.compute_cycles(tiny.total_macs(), &tiny) > 0.99);
    }

    #[test]
    fn display_format() {
        // Dimensions render in canonical (B, K, C, OX, OY, FX, FY) order.
        assert_eq!(meta_unroll().to_string(), "K 32 | C 2 | OX 4 | OY 4");
    }
}
