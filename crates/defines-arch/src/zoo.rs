//! Accelerator zoo: the ten architectures of Table I(a) plus a DepFiN-like
//! validation architecture.
//!
//! All case-study architectures are normalized as in the paper: 1024 MACs and
//! at most 2 MB of global buffer, keeping each design's spatial unrolling and
//! local-buffer structure. Every baseline has a manually constructed
//! *DF-friendly* variant (same spatial unrolling, same total on-chip capacity,
//! but inputs and outputs share a lower-level memory and weights get an
//! on-chip global buffer).

#![allow(clippy::identity_op)] // 1 * KB / 1 * MB capacities read as a spec table

use crate::accelerator::{Accelerator, AcceleratorBuilder};
use crate::energy::MAC_ENERGY_PJ;
use crate::memory::MemoryLevel;
use crate::operand::Operand::{self, Input, Output, Weight};
use crate::pe_array::SpatialUnrolling;
use defines_workload::Dim;

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

fn unroll(pairs: &[(Dim, u64)]) -> SpatialUnrolling {
    SpatialUnrolling::from_pairs(pairs.iter().copied())
}

/// Idx 1 — Meta-prototype-like baseline: `K 32 | C 2 | OX 4 | OY 4`,
/// per-operand local buffers (W 64 KB, I 32 KB), 2 MB of global buffer split
/// between weights and activations.
pub fn meta_proto_like() -> Accelerator {
    AcceleratorBuilder::new("Meta-proto-like")
        .pe_array(
            unroll(&[(Dim::K, 32), (Dim::C, 2), (Dim::OX, 4), (Dim::OY, 4)]),
            MAC_ENERGY_PJ,
        )
        .add_level(MemoryLevel::register("W_reg", 1 * KB, [Weight]))
        .add_level(MemoryLevel::register("O_reg", 2 * KB, [Output]))
        .add_level(MemoryLevel::sram("LB_W", 64 * KB, [Weight]))
        .add_level(MemoryLevel::sram("LB_I", 32 * KB, [Input]))
        .add_level(MemoryLevel::sram("GB_W", 1 * MB, [Weight]))
        .add_level(MemoryLevel::sram("GB_IO", 1 * MB, [Input, Output]))
        .build()
        .expect("zoo architecture is valid")
}

/// Idx 2 — Meta-prototype-like DF variant: inputs and outputs share a 64 KB
/// local buffer, weights keep a 32 KB local buffer; global buffers unchanged.
pub fn meta_proto_like_df() -> Accelerator {
    AcceleratorBuilder::new("Meta-proto-like DF")
        .pe_array(
            unroll(&[(Dim::K, 32), (Dim::C, 2), (Dim::OX, 4), (Dim::OY, 4)]),
            MAC_ENERGY_PJ,
        )
        .add_level(MemoryLevel::register("W_reg", 1 * KB, [Weight]))
        .add_level(MemoryLevel::register("O_reg", 2 * KB, [Output]))
        .add_level(MemoryLevel::sram("LB_W", 32 * KB, [Weight]))
        .add_level(MemoryLevel::sram("LB_IO", 64 * KB, [Input, Output]))
        .add_level(MemoryLevel::sram("GB_W", 1 * MB, [Weight]))
        .add_level(MemoryLevel::sram("GB_IO", 1 * MB, [Input, Output]))
        .build()
        .expect("zoo architecture is valid")
}

/// Idx 3 — TPU-like baseline: `K 32 | C 32` systolic array, weights stream
/// from DRAM (no on-chip weight buffer), a 2 MB unified activation buffer.
pub fn tpu_like() -> Accelerator {
    AcceleratorBuilder::new("TPU-like")
        .pe_array(unroll(&[(Dim::K, 32), (Dim::C, 32)]), MAC_ENERGY_PJ)
        .add_level(MemoryLevel::register("W_reg", 4 * KB, [Weight]))
        .add_level(MemoryLevel::register("O_reg", 32 * KB, [Output]))
        .add_level(MemoryLevel::sram("GB_IO", 2 * MB, [Input, Output]))
        .build()
        .expect("zoo architecture is valid")
}

/// Idx 4 — TPU-like DF variant: a 64 KB shared I/O local buffer is carved out
/// and half of the global buffer is reassigned to weights.
pub fn tpu_like_df() -> Accelerator {
    AcceleratorBuilder::new("TPU-like DF")
        .pe_array(unroll(&[(Dim::K, 32), (Dim::C, 32)]), MAC_ENERGY_PJ)
        .add_level(MemoryLevel::register("W_reg", 2 * KB, [Weight]))
        .add_level(MemoryLevel::register("O_reg", 32 * KB, [Output]))
        .add_level(MemoryLevel::sram("LB_IO", 64 * KB, [Input, Output]))
        .add_level(MemoryLevel::sram("GB_W", 1 * MB, [Weight]))
        .add_level(MemoryLevel::sram("GB_IO", 1 * MB, [Input, Output]))
        .build()
        .expect("zoo architecture is valid")
}

/// Idx 5 — Edge-TPU-like baseline: `K 8 | C 8 | OX 4 | OY 4`, 32 KB weight
/// local buffer, 2 MB unified activation global buffer.
pub fn edge_tpu_like() -> Accelerator {
    AcceleratorBuilder::new("Edge-TPU-like")
        .pe_array(
            unroll(&[(Dim::K, 8), (Dim::C, 8), (Dim::OX, 4), (Dim::OY, 4)]),
            MAC_ENERGY_PJ,
        )
        .add_level(MemoryLevel::register("W_reg", 1 * KB, [Weight]))
        .add_level(MemoryLevel::register("O_reg", 2 * KB, [Output]))
        .add_level(MemoryLevel::sram("LB_W", 32 * KB, [Weight]))
        .add_level(MemoryLevel::sram("GB_IO", 2 * MB, [Input, Output]))
        .build()
        .expect("zoo architecture is valid")
}

/// Idx 6 — Edge-TPU-like DF variant: the local buffer is split between weights
/// (16 KB) and shared activations (16 KB); half the global buffer goes to
/// weights.
pub fn edge_tpu_like_df() -> Accelerator {
    AcceleratorBuilder::new("Edge-TPU-like DF")
        .pe_array(
            unroll(&[(Dim::K, 8), (Dim::C, 8), (Dim::OX, 4), (Dim::OY, 4)]),
            MAC_ENERGY_PJ,
        )
        .add_level(MemoryLevel::register("W_reg", 1 * KB, [Weight]))
        .add_level(MemoryLevel::register("O_reg", 2 * KB, [Output]))
        .add_level(MemoryLevel::sram("LB_W", 16 * KB, [Weight]))
        .add_level(MemoryLevel::sram("LB_IO", 16 * KB, [Input, Output]))
        .add_level(MemoryLevel::sram("GB_W", 1 * MB, [Weight]))
        .add_level(MemoryLevel::sram("GB_IO", 1 * MB, [Input, Output]))
        .build()
        .expect("zoo architecture is valid")
}

/// Idx 7 — Ascend-like baseline: `K 16 | C 16 | OX 2 | OY 2`, per-operand
/// local buffers (W 64 KB, I 64 KB, O 256 KB) and a split global buffer.
pub fn ascend_like() -> Accelerator {
    AcceleratorBuilder::new("Ascend-like")
        .pe_array(
            unroll(&[(Dim::K, 16), (Dim::C, 16), (Dim::OX, 2), (Dim::OY, 2)]),
            MAC_ENERGY_PJ,
        )
        .add_level(MemoryLevel::register("W_reg", 1 * KB, [Weight]))
        .add_level(MemoryLevel::register("O_reg", 2 * KB, [Output]))
        .add_level(MemoryLevel::sram("LB_W", 64 * KB, [Weight]))
        .add_level(MemoryLevel::sram("LB_I", 64 * KB, [Input]))
        .add_level(MemoryLevel::sram("LB_O", 256 * KB, [Output]))
        .add_level(MemoryLevel::sram("GB_W", 1 * MB, [Weight]))
        .add_level(MemoryLevel::sram("GB_IO", 1 * MB, [Input, Output]))
        .build()
        .expect("zoo architecture is valid")
}

/// Idx 8 — Ascend-like DF variant: a shared 64 KB I/O local buffer backed by a
/// 256 KB second-level shared activation buffer.
pub fn ascend_like_df() -> Accelerator {
    AcceleratorBuilder::new("Ascend-like DF")
        .pe_array(
            unroll(&[(Dim::K, 16), (Dim::C, 16), (Dim::OX, 2), (Dim::OY, 2)]),
            MAC_ENERGY_PJ,
        )
        .add_level(MemoryLevel::register("W_reg", 1 * KB, [Weight]))
        .add_level(MemoryLevel::register("O_reg", 2 * KB, [Output]))
        .add_level(MemoryLevel::sram("LB_W", 64 * KB, [Weight]))
        .add_level(MemoryLevel::sram("LB_IO", 64 * KB, [Input, Output]))
        .add_level(MemoryLevel::sram("LB2_IO", 256 * KB, [Input, Output]))
        .add_level(MemoryLevel::sram("GB_W", 1 * MB, [Weight]))
        .add_level(MemoryLevel::sram("GB_IO", 1 * MB, [Input, Output]))
        .build()
        .expect("zoo architecture is valid")
}

/// Idx 9 — Tesla-NPU-like baseline: `K 32 | OX 8 | OY 4`, tiny 1 KB weight and
/// input local buffers, split global buffer.
pub fn tesla_npu_like() -> Accelerator {
    AcceleratorBuilder::new("Tesla-NPU-like")
        .pe_array(
            unroll(&[(Dim::K, 32), (Dim::OX, 8), (Dim::OY, 4)]),
            MAC_ENERGY_PJ,
        )
        .add_level(MemoryLevel::register("W_reg", 1 * KB, [Weight]))
        .add_level(MemoryLevel::register("O_reg", 4 * KB, [Output]))
        .add_level(MemoryLevel::sram("LB_W", 1 * KB, [Weight]))
        .add_level(MemoryLevel::sram("LB_I", 1 * KB, [Input]))
        .add_level(MemoryLevel::sram("GB_W", 1 * MB, [Weight]))
        .add_level(MemoryLevel::sram("GB_IO", 1 * MB, [Input, Output]))
        .build()
        .expect("zoo architecture is valid")
}

/// Idx 10 — Tesla-NPU-like DF variant: adds a 64 KB / 64 KB second-level local
/// buffer for weights and shared activations, shrinking the activation global
/// buffer to 896 KB to keep the total on-chip capacity constant.
pub fn tesla_npu_like_df() -> Accelerator {
    AcceleratorBuilder::new("Tesla-NPU-like DF")
        .pe_array(
            unroll(&[(Dim::K, 32), (Dim::OX, 8), (Dim::OY, 4)]),
            MAC_ENERGY_PJ,
        )
        .add_level(MemoryLevel::register("W_reg", 1 * KB, [Weight]))
        .add_level(MemoryLevel::register("O_reg", 4 * KB, [Output]))
        .add_level(MemoryLevel::sram("LB_W", 1 * KB, [Weight]))
        .add_level(MemoryLevel::sram("LB_I", 1 * KB, [Input]))
        .add_level(MemoryLevel::sram("LB2_W", 64 * KB, [Weight]))
        .add_level(MemoryLevel::sram("LB2_IO", 64 * KB, [Input, Output]))
        .add_level(MemoryLevel::sram("GB_W", 1 * MB, [Weight]))
        .add_level(MemoryLevel::sram("GB_IO", 896 * KB, [Input, Output]))
        .build()
        .expect("zoo architecture is valid")
}

/// A DepFiN-like depth-first CNN processor used for the validation experiment
/// (Section IV): a line-buffer oriented design with a large shared activation
/// local buffer and an on-chip weight buffer.
pub fn depfin_like() -> Accelerator {
    AcceleratorBuilder::new("DepFiN-like")
        .pe_array(
            unroll(&[(Dim::K, 16), (Dim::C, 4), (Dim::OX, 16)]),
            MAC_ENERGY_PJ,
        )
        .add_level(MemoryLevel::register("W_reg", 1 * KB, [Weight]))
        .add_level(MemoryLevel::register("O_reg", 4 * KB, [Output]))
        .add_level(MemoryLevel::sram("LB_W", 64 * KB, [Weight]))
        .add_level(MemoryLevel::sram("LB_IO", 256 * KB, [Input, Output]))
        .add_level(MemoryLevel::sram("GB_W", 512 * KB, [Weight]))
        .add_level(MemoryLevel::sram("GB_IO", 1 * MB, [Input, Output]))
        .build()
        .expect("zoo architecture is valid")
}

/// The five baseline architectures, in Table I(a) order (indices 1, 3, 5, 7, 9).
pub fn baseline_architectures() -> Vec<Accelerator> {
    vec![
        meta_proto_like(),
        tpu_like(),
        edge_tpu_like(),
        ascend_like(),
        tesla_npu_like(),
    ]
}

/// The five DF-friendly variants, in Table I(a) order (indices 2, 4, 6, 8, 10).
pub fn df_architectures() -> Vec<Accelerator> {
    vec![
        meta_proto_like_df(),
        tpu_like_df(),
        edge_tpu_like_df(),
        ascend_like_df(),
        tesla_npu_like_df(),
    ]
}

/// All ten case-study architectures in Table I(a) index order
/// (baseline, DF, baseline, DF, …).
pub fn all_case_study_architectures() -> Vec<Accelerator> {
    let mut v = Vec::with_capacity(10);
    for (b, d) in baseline_architectures().into_iter().zip(df_architectures()) {
        v.push(b);
        v.push(d);
    }
    v
}

/// True when the accelerator has at least one on-chip memory level dedicated
/// to or shared with weights (the TPU-like baseline does not, which is why it
/// benefits so little from depth-first scheduling in case study 3).
pub fn has_on_chip_weight_buffer(acc: &Accelerator) -> bool {
    acc.hierarchy()
        .levels_for(Operand::Weight)
        .any(|(_, l)| !l.is_dram() && l.capacity_bytes().unwrap_or(0) >= 16 * KB)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_architectures_have_1024_macs() {
        for acc in all_case_study_architectures() {
            assert_eq!(acc.pe_array().total_macs(), 1024, "{}", acc.name());
        }
        assert_eq!(depfin_like().pe_array().total_macs(), 1024);
    }

    #[test]
    fn global_buffers_capped_at_2mb() {
        for acc in all_case_study_architectures() {
            let gb_total: u64 = acc
                .hierarchy()
                .levels()
                .iter()
                .filter(|l| l.name().starts_with("GB"))
                .filter_map(|l| l.capacity_bytes())
                .sum();
            assert!(gb_total <= 2 * MB, "{}: GB total {gb_total}", acc.name());
        }
    }

    #[test]
    fn zoo_has_ten_case_study_architectures() {
        let all = all_case_study_architectures();
        assert_eq!(all.len(), 10);
        // Alternating baseline / DF naming.
        for (i, acc) in all.iter().enumerate() {
            if i % 2 == 1 {
                assert!(acc.name().ends_with("DF"), "{}", acc.name());
            } else {
                assert!(!acc.name().ends_with("DF"), "{}", acc.name());
            }
        }
    }

    #[test]
    fn df_variants_keep_total_on_chip_capacity() {
        // Guideline 2 of the paper: total on-chip memory capacity is unchanged
        // between a baseline and its DF variant (within the small rounding the
        // paper itself applies, e.g. Tesla-NPU 1 MB -> 896 KB + 128 KB of LB2).
        for (b, d) in baseline_architectures().into_iter().zip(df_architectures()) {
            let cb = b.hierarchy().total_on_chip_bytes() as f64;
            let cd = d.hierarchy().total_on_chip_bytes() as f64;
            let ratio = cd / cb;
            assert!(
                (0.9..=1.1).contains(&ratio),
                "{} vs {}: {cb} vs {cd}",
                b.name(),
                d.name()
            );
        }
    }

    #[test]
    fn df_variants_share_io_in_a_local_buffer() {
        for acc in df_architectures() {
            let has_shared_io_lb = acc.hierarchy().levels().iter().any(|l| {
                !l.is_dram()
                    && l.serves(Input)
                    && l.serves(Output)
                    && l.capacity_bytes().unwrap_or(0) <= 256 * KB
            });
            assert!(
                has_shared_io_lb,
                "{} lacks a shared I/O local buffer",
                acc.name()
            );
        }
    }

    #[test]
    fn tpu_like_has_no_weight_buffer_but_df_variant_does() {
        assert!(!has_on_chip_weight_buffer(&tpu_like()));
        assert!(has_on_chip_weight_buffer(&tpu_like_df()));
        assert!(has_on_chip_weight_buffer(&meta_proto_like()));
    }

    #[test]
    fn spatial_unrollings_match_table_1a() {
        let meta = meta_proto_like();
        assert_eq!(meta.pe_array().unrolling().factor(Dim::K), 32);
        assert_eq!(meta.pe_array().unrolling().factor(Dim::C), 2);
        assert_eq!(meta.pe_array().unrolling().factor(Dim::OX), 4);
        let tpu = tpu_like();
        assert_eq!(tpu.pe_array().unrolling().factor(Dim::C), 32);
        let tesla = tesla_npu_like();
        assert_eq!(tesla.pe_array().unrolling().factor(Dim::OX), 8);
        assert_eq!(tesla.pe_array().unrolling().factor(Dim::C), 1);
    }

    #[test]
    fn df_variant_keeps_spatial_unrolling() {
        for (b, d) in baseline_architectures().into_iter().zip(df_architectures()) {
            assert_eq!(
                b.pe_array().unrolling(),
                d.pe_array().unrolling(),
                "{} vs {}",
                b.name(),
                d.name()
            );
        }
    }

    #[test]
    fn depfin_is_df_friendly() {
        let acc = depfin_like();
        assert!(has_on_chip_weight_buffer(&acc));
        let lb = acc.hierarchy().level_named("LB_IO").unwrap();
        assert!(lb.serves(Input) && lb.serves(Output));
    }
}
