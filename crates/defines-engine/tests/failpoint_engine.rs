//! Fault-injection campaign against the sweep engine: an armed
//! `engine.execute` failpoint must surface as a single `Failed` record while
//! every sibling point and the shared memo cache stay intact.
#![cfg(feature = "failpoints")]

use defines_engine::{EngineConfig, MemoCache, Outcome, SweepEngine};
use defines_telemetry::fault;

fn run_sweep(threads: usize, cache: &MemoCache<i64, f64>) -> Vec<(usize, Option<f64>)> {
    let engine = if threads <= 1 {
        SweepEngine::new(EngineConfig::sequential())
    } else {
        SweepEngine::new(EngineConfig::parallel().with_threads(threads))
    };
    let points: Vec<i64> = (0..24).collect();
    let (records, _) = engine.run_collect(
        &points,
        &|p: &i64| cache.get_or_insert_with(*p, || (*p as f64) * 3.0),
        &|_, c: &f64| *c,
        None::<&fn(&i64) -> f64>,
    );
    records.iter().map(|r| (r.index, r.value())).collect()
}

#[test]
fn armed_engine_failpoint_fails_one_point_and_spares_the_cache() {
    let cache: MemoCache<i64, f64> = MemoCache::new();

    // Fire on the 5th execution. Which *point* that is depends on thread
    // interleaving, which is exactly what the isolation contract must absorb.
    let guard = fault::arm("engine.execute", 5);
    let engine = SweepEngine::new(EngineConfig::parallel().with_threads(4));
    let points: Vec<i64> = (0..24).collect();
    let (records, stats) = engine.run_collect(
        &points,
        &|p: &i64| cache.get_or_insert_with(*p, || (*p as f64) * 3.0),
        &|_, c: &f64| *c,
        None::<&fn(&i64) -> f64>,
    );
    drop(guard);

    assert_eq!(stats.failed, 1, "exactly one injected failure");
    assert_eq!(stats.evaluated, 23);
    let failed: Vec<_> = records
        .iter()
        .filter_map(|r| match &r.outcome {
            Outcome::Failed { error } => Some((r.index, error.clone())),
            _ => None,
        })
        .collect();
    assert_eq!(failed.len(), 1);
    assert_eq!(failed[0].1, "failpoint engine.execute fired");

    // The cache survived the injected panic: a fault-free re-sweep over the
    // same cache returns every value, bit-identical at any thread count.
    let baseline = run_sweep(1, &MemoCache::new());
    for threads in [1, 4, 8] {
        let rerun = run_sweep(threads, &cache);
        assert_eq!(rerun, baseline, "post-panic sweep at {threads} threads");
    }
}
