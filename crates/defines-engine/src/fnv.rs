//! Deterministic FNV-1a hashing for artifacts that outlive the process.
//!
//! `std::collections::hash_map::DefaultHasher` is not guaranteed stable
//! across Rust releases, so anything persisted to disk (matrix checkpoints,
//! the mapping-cache store) fingerprints its keys with this fixed algorithm
//! instead. The constants are the standard 64-bit FNV-1a offset basis and
//! prime.

/// Deterministic FNV-1a over a byte stream.
///
/// Unlike `DefaultHasher`, the produced value is a pure function of the
/// input bytes for every Rust release, so two builds of the tool agree on
/// the fingerprint of the same logical key.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// A hasher initialized with the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running hash.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Folds a `u64` into the running hash (little-endian byte order).
    pub fn write_u64(&mut self, n: u64) {
        self.write(&n.to_le_bytes());
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // FNV-1a("") is the offset basis; FNV-1a("a") is a published vector.
        assert_eq!(Fnv::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv::new();
        h.write(b"a");
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn write_u64_is_little_endian_bytes() {
        let mut a = Fnv::new();
        a.write_u64(0x0102_0304_0506_0708);
        let mut b = Fnv::new();
        b.write(&[0x08, 0x07, 0x06, 0x05, 0x04, 0x03, 0x02, 0x01]);
        assert_eq!(a.finish(), b.finish());
    }
}
