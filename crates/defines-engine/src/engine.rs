//! The work-queue parallel sweep executor with pruning and streaming results.

use crate::memo::CacheStats;
use defines_telemetry::{failpoint, span, Counter, Gauge};
use serde::{Serialize, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::{Duration, Instant};

/// Design points fully evaluated across every sweep in the process.
static POINTS_EVALUATED: Counter = Counter::new("engine.points_evaluated");
/// Design points skipped by lower-bound pruning across every sweep.
static POINTS_PRUNED: Counter = Counter::new("engine.points_pruned");
/// Per-point panics caught and isolated into [`Outcome::Failed`] records.
static CAUGHT_PANICS: Counter = Counter::new("fault.caught_panics");
/// Worker threads of the most recent sweep.
static THREADS_GAUGE: Gauge = Gauge::new("engine.threads");

/// How a sweep executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads. `1` evaluates inline on the calling thread, in point
    /// order.
    pub threads: usize,
    /// Whether lower-bound pruning is applied (only takes effect when the
    /// caller supplies a bound).
    pub prune: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self::parallel()
    }
}

impl EngineConfig {
    /// One worker, no pruning: the engine's faithful re-implementation of a
    /// plain sequential sweep.
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            prune: false,
        }
    }

    /// One worker per available core, pruning enabled.
    pub fn parallel() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(1, |n| n.get()),
            prune: true,
        }
    }

    /// Returns a copy with an explicit worker count (minimum 1).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Returns a copy with pruning switched on or off.
    pub fn with_pruning(mut self, prune: bool) -> Self {
        self.prune = prune;
        self
    }
}

/// What happened to one design point.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome<C> {
    /// The point was fully evaluated.
    Evaluated {
        /// The evaluated cost.
        cost: C,
        /// The scalar objective value of the cost.
        value: f64,
    },
    /// The point was skipped: its lower bound already exceeded the best
    /// evaluated value, so its true cost cannot beat (or even tie) the best.
    Pruned {
        /// The lower bound that justified skipping.
        lower_bound: f64,
    },
    /// The point's evaluation panicked. The panic was caught and isolated
    /// into this record: sibling points are unaffected, the sweep completes,
    /// and the shared caches recover (see `MemoCache`'s poison recovery).
    /// Failed points never update the shared pruning incumbent, so every
    /// other record is bit-identical to a run where this point was absent.
    Failed {
        /// The panic payload, rendered as a string.
        error: String,
    },
}

/// One streamed sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepRecord<P, C> {
    /// Index of the design point in the submitted order.
    pub index: usize,
    /// The design point.
    pub point: P,
    /// Evaluation outcome.
    pub outcome: Outcome<C>,
    /// Whether this record improved on every record streamed before it.
    pub is_best_so_far: bool,
}

impl<P, C> SweepRecord<P, C> {
    /// The objective value, if the point was evaluated.
    pub fn value(&self) -> Option<f64> {
        match &self.outcome {
            Outcome::Evaluated { value, .. } => Some(*value),
            Outcome::Pruned { .. } | Outcome::Failed { .. } => None,
        }
    }

    /// The evaluated cost, if the point was evaluated.
    pub fn cost(&self) -> Option<&C> {
        match &self.outcome {
            Outcome::Evaluated { cost, .. } => Some(cost),
            Outcome::Pruned { .. } | Outcome::Failed { .. } => None,
        }
    }
}

impl<C: Serialize> Serialize for Outcome<C> {
    fn to_value(&self) -> Value {
        match self {
            Outcome::Evaluated { cost, value } => Value::Object(vec![(
                "Evaluated".to_string(),
                Value::Object(vec![
                    ("cost".to_string(), cost.to_value()),
                    ("value".to_string(), Value::F64(*value)),
                ]),
            )]),
            Outcome::Pruned { lower_bound } => Value::Object(vec![(
                "Pruned".to_string(),
                Value::Object(vec![("lower_bound".to_string(), Value::F64(*lower_bound))]),
            )]),
            Outcome::Failed { error } => Value::Object(vec![(
                "Failed".to_string(),
                Value::Object(vec![("error".to_string(), Value::Str(error.clone()))]),
            )]),
        }
    }
}

impl<P: Serialize, C: Serialize> Serialize for SweepRecord<P, C> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("index".to_string(), Value::U64(self.index as u64)),
            ("point".to_string(), self.point.to_value()),
            ("outcome".to_string(), self.outcome.to_value()),
            (
                "is_best_so_far".to_string(),
                Value::Bool(self.is_best_so_far),
            ),
        ])
    }
}

/// Summary of one sweep run.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepStats {
    /// Label of the run (e.g. the workload name), empty when unlabelled. Set
    /// via [`SweepEngine::with_label`]; lets streamed reports and JSON dumps
    /// identify which sweep produced them when several run side by side.
    pub label: String,
    /// Total design points submitted.
    pub points: usize,
    /// Points fully evaluated.
    pub evaluated: usize,
    /// Points skipped by lower-bound pruning.
    pub pruned: usize,
    /// Points whose evaluation panicked; the panics were caught and reported
    /// as [`Outcome::Failed`] records instead of aborting the sweep.
    pub failed: usize,
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock time of the sweep.
    pub elapsed: Duration,
    /// Snapshot of the memoization cache backing the sweep's evaluations, if
    /// the caller attached one (see
    /// [`SweepStats::with_cache`]). Includes canonical-key hits, so streamed
    /// reports can show how much of the reuse came from problem
    /// canonicalization rather than exact repetition.
    pub cache: Option<CacheStats>,
}

impl SweepStats {
    /// Returns a copy with a cache-statistics snapshot attached (typically
    /// taken from the mapping cache right after the run finishes).
    pub fn with_cache(mut self, cache: CacheStats) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Fully evaluated design points per second of wall-clock time (zero for
    /// an instantaneous or empty run) — the throughput figure streamed
    /// reports print next to the evaluated/pruned counts.
    pub fn points_per_second(&self) -> f64 {
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            self.evaluated as f64 / secs
        } else {
            0.0
        }
    }

    /// Aggregates several runs' statistics under one label: point, evaluated
    /// and pruned counts are summed, `elapsed` is the total busy time across
    /// the runs (they may have executed concurrently, so this is work, not
    /// wall clock), and `threads` is the widest run. Cache snapshots are not
    /// merged — runs sharing one cache would double-count; attach a single
    /// whole-matrix snapshot via [`SweepStats::with_cache`] instead.
    ///
    /// The matrix runner uses this to report how many *design points* its
    /// per-cell schedule searches evaluated in total, next to the outer
    /// flattened run's per-cell statistics.
    pub fn merged<'a>(
        label: impl Into<String>,
        runs: impl IntoIterator<Item = &'a SweepStats>,
    ) -> SweepStats {
        let mut out = SweepStats {
            label: label.into(),
            points: 0,
            evaluated: 0,
            pruned: 0,
            failed: 0,
            threads: 0,
            elapsed: Duration::ZERO,
            cache: None,
        };
        for run in runs {
            out.points += run.points;
            out.evaluated += run.evaluated;
            out.pruned += run.pruned;
            out.failed += run.failed;
            out.threads = out.threads.max(run.threads);
            out.elapsed += run.elapsed;
        }
        out
    }
}

impl Serialize for SweepStats {
    fn to_value(&self) -> Value {
        let mut fields = vec![
            ("label".to_string(), Value::Str(self.label.clone())),
            ("points".to_string(), Value::U64(self.points as u64)),
            ("evaluated".to_string(), Value::U64(self.evaluated as u64)),
            ("pruned".to_string(), Value::U64(self.pruned as u64)),
            ("failed".to_string(), Value::U64(self.failed as u64)),
            ("threads".to_string(), Value::U64(self.threads as u64)),
            (
                "elapsed_ms".to_string(),
                Value::F64(self.elapsed.as_secs_f64() * 1e3),
            ),
        ];
        if let Some(cache) = &self.cache {
            fields.push((
                "cache".to_string(),
                Value::Object(vec![
                    ("entries".to_string(), Value::U64(cache.entries as u64)),
                    ("hits".to_string(), Value::U64(cache.hits)),
                    ("misses".to_string(), Value::U64(cache.misses)),
                    (
                        "canonical_hits".to_string(),
                        Value::U64(cache.canonical_hits),
                    ),
                    ("hit_rate".to_string(), Value::F64(cache.hit_rate())),
                ]),
            ));
        }
        Value::Object(fields)
    }
}

/// The parallel sweep executor.
///
/// `run` fans the design points out over a work queue, evaluates them with
/// the caller's closure, and streams one [`SweepRecord`] per point (in
/// completion order) to the caller's sink. The best objective value seen so
/// far is shared across workers; when pruning is enabled and the caller
/// provides a lower bound, points whose bound *strictly* exceeds the current
/// best are skipped. Strictness matters: a skipped point can therefore never
/// tie the best evaluated point, so the arg-min over evaluated points (with
/// index tie-breaking) is identical with and without pruning.
#[derive(Debug, Clone, Default)]
pub struct SweepEngine {
    config: EngineConfig,
    label: Option<String>,
}

impl SweepEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        Self {
            config,
            label: None,
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Returns a copy whose runs are labelled (the label is carried on every
    /// [`SweepStats`] the engine produces — typically the workload name, so
    /// reports from concurrent sweeps stay attributable).
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = Some(label.into());
        self
    }

    /// Returns a copy with run detail appended to the label as
    /// `"label (detail)"` (or used as the label outright when none is set).
    /// Searches that submit structured candidate sets — e.g. the fuse-depth
    /// search's segment spans — use this so their [`SweepStats`] distinguish
    /// themselves from plain design-point sweeps over the same workload.
    pub fn with_label_detail(mut self, detail: impl Into<String>) -> Self {
        let detail = detail.into();
        self.label = Some(match self.label.take() {
            Some(label) => format!("{label} ({detail})"),
            None => detail,
        });
        self
    }

    /// The label applied to this engine's runs, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Runs a sweep, streaming records to `on_record`.
    ///
    /// * `evaluate` — full evaluation of one design point (expensive),
    /// * `objective` — scalar value to minimize, derived from a cost,
    /// * `lower_bound` — optional cheap bound: must never exceed the true
    ///   objective value of the point, or pruning could drop the optimum.
    ///
    /// A panic inside `evaluate`, `objective` or `lower_bound` is caught and
    /// isolated to that point: the sweep streams an [`Outcome::Failed`]
    /// record carrying the panic message and continues. Failed points never
    /// update the shared pruning incumbent, so all sibling records are
    /// bit-identical to a run without the failure.
    pub fn run<P, C, E, V, L, S>(
        &self,
        points: &[P],
        evaluate: &E,
        objective: &V,
        lower_bound: Option<&L>,
        on_record: S,
    ) -> SweepStats
    where
        P: Clone + Sync,
        C: Send,
        E: Fn(&P) -> C + Sync,
        V: Fn(&P, &C) -> f64 + Sync,
        L: Fn(&P) -> f64 + Sync,
        S: FnMut(SweepRecord<P, C>),
    {
        let _run_span = span!("engine.run");
        // lint:allow(wall-clock, elapsed feeds SweepStats reporting only, never results)
        let start = Instant::now();
        let bound = if self.config.prune { lower_bound } else { None };
        let threads = self.config.threads.min(points.len()).max(1);
        THREADS_GAUGE.set(threads as u64);
        let (evaluated, pruned, failed) = if threads <= 1 {
            self.run_sequential(points, evaluate, objective, bound, on_record)
        } else {
            self.run_parallel(points, threads, evaluate, objective, bound, on_record)
        };
        POINTS_EVALUATED.add(evaluated as u64);
        POINTS_PRUNED.add(pruned as u64);
        SweepStats {
            label: self.label.clone().unwrap_or_default(),
            points: points.len(),
            evaluated,
            pruned,
            failed,
            threads,
            elapsed: start.elapsed(),
            cache: None,
        }
    }

    /// Runs a sweep and returns the records ordered by design-point index.
    pub fn run_collect<P, C, E, V, L>(
        &self,
        points: &[P],
        evaluate: &E,
        objective: &V,
        lower_bound: Option<&L>,
    ) -> (Vec<SweepRecord<P, C>>, SweepStats)
    where
        P: Clone + Sync,
        C: Send,
        E: Fn(&P) -> C + Sync,
        V: Fn(&P, &C) -> f64 + Sync,
        L: Fn(&P) -> f64 + Sync,
    {
        let mut records: Vec<Option<SweepRecord<P, C>>> = (0..points.len()).map(|_| None).collect();
        let stats = self.run(points, evaluate, objective, lower_bound, |r| {
            let index = r.index;
            records[index] = Some(r);
        });
        let records = records
            .into_iter()
            .map(|r| r.expect("every submitted point produces exactly one record"))
            .collect();
        (records, stats)
    }

    /// The best evaluated record of a sweep: minimal objective value, ties
    /// broken by the lowest design-point index — exactly the arg-min a
    /// sequential scan in submission order would select.
    pub fn best_record<P, C>(records: Vec<SweepRecord<P, C>>) -> Option<SweepRecord<P, C>> {
        records
            .into_iter()
            .filter(|r| r.value().is_some())
            .min_by(|a, b| {
                let (va, vb) = (a.value().unwrap(), b.value().unwrap());
                va.total_cmp(&vb).then(a.index.cmp(&b.index))
            })
    }

    fn run_sequential<P, C, E, V, L, S>(
        &self,
        points: &[P],
        evaluate: &E,
        objective: &V,
        lower_bound: Option<&L>,
        mut on_record: S,
    ) -> (usize, usize, usize)
    where
        P: Clone,
        E: Fn(&P) -> C,
        V: Fn(&P, &C) -> f64,
        L: Fn(&P) -> f64,
        S: FnMut(SweepRecord<P, C>),
    {
        let mut best = f64::INFINITY;
        let mut evaluated = 0;
        let mut pruned = 0;
        let mut failed = 0;
        for (index, point) in points.iter().enumerate() {
            let outcome = execute_point(index, point, best, evaluate, objective, lower_bound);
            let is_best = match &outcome {
                Outcome::Evaluated { value, .. } => {
                    evaluated += 1;
                    let better = *value < best;
                    best = best.min(*value);
                    better
                }
                Outcome::Pruned { .. } => {
                    pruned += 1;
                    false
                }
                Outcome::Failed { .. } => {
                    failed += 1;
                    false
                }
            };
            on_record(SweepRecord {
                index,
                point: point.clone(),
                outcome,
                is_best_so_far: is_best,
            });
        }
        (evaluated, pruned, failed)
    }

    fn run_parallel<P, C, E, V, L, S>(
        &self,
        points: &[P],
        threads: usize,
        evaluate: &E,
        objective: &V,
        lower_bound: Option<&L>,
        mut on_record: S,
    ) -> (usize, usize, usize)
    where
        P: Clone + Sync,
        C: Send,
        E: Fn(&P) -> C + Sync,
        V: Fn(&P, &C) -> f64 + Sync,
        L: Fn(&P) -> f64 + Sync,
        S: FnMut(SweepRecord<P, C>),
    {
        let queue = AtomicUsize::new(0);
        let best_bits = AtomicU64::new(f64::INFINITY.to_bits());
        let mut evaluated = 0;
        let mut pruned = 0;
        let mut failed = 0;
        std::thread::scope(|scope| {
            let (tx, rx) = mpsc::channel::<(usize, Outcome<C>)>();
            for worker in 0..threads {
                let tx = tx.clone();
                let queue = &queue;
                let best_bits = &best_bits;
                scope.spawn(move || {
                    // Bound first so it drops last: flushes this worker's
                    // span buffer before the scope owner can resume and
                    // drain (the exit-time flush alone races with `scope`).
                    let _flush = defines_telemetry::flush_on_exit();
                    let _worker_span = span!("engine.worker", worker = worker);
                    loop {
                        let index = queue.fetch_add(1, Ordering::Relaxed);
                        if index >= points.len() {
                            return;
                        }
                        let point = &points[index];
                        let best = f64::from_bits(best_bits.load(Ordering::Relaxed));
                        let outcome =
                            execute_point(index, point, best, evaluate, objective, lower_bound);
                        if let Outcome::Evaluated { value, .. } = &outcome {
                            atomic_f64_min(best_bits, *value);
                        }
                        if tx.send((index, outcome)).is_err() {
                            return;
                        }
                    }
                });
            }
            drop(tx);
            let _collect_span = span!("engine.collect");
            let mut best_seen = f64::INFINITY;
            for (index, outcome) in rx {
                let is_best = match &outcome {
                    Outcome::Evaluated { value, .. } => {
                        evaluated += 1;
                        let better = *value < best_seen;
                        best_seen = best_seen.min(*value);
                        better
                    }
                    Outcome::Pruned { .. } => {
                        pruned += 1;
                        false
                    }
                    Outcome::Failed { .. } => {
                        failed += 1;
                        false
                    }
                };
                on_record(SweepRecord {
                    index,
                    point: points[index].clone(),
                    outcome,
                    is_best_so_far: is_best,
                });
            }
        });
        (evaluated, pruned, failed)
    }
}

/// Executes one design point with panic isolation: the pruning check, the
/// evaluation and the objective all run inside `catch_unwind`, so a panic
/// anywhere becomes an [`Outcome::Failed`] for this point alone instead of
/// unwinding through the worker (which would poison shared locks and, on the
/// parallel path, abort the whole scope).
///
/// `AssertUnwindSafe` is sound here: a caught panic abandons everything the
/// closure was building, the shared state the evaluation may have touched
/// (the memo/mapping caches, the search worker pool) recovers from lock
/// poisoning by construction, and the engine never reuses partial results of
/// a failed point.
fn execute_point<P, C, E, V, L>(
    index: usize,
    point: &P,
    best: f64,
    evaluate: &E,
    objective: &V,
    lower_bound: Option<&L>,
) -> Outcome<C>
where
    E: Fn(&P) -> C,
    V: Fn(&P, &C) -> f64,
    L: Fn(&P) -> f64,
{
    // `quiet_panics` silences the default panic hook for exactly this
    // region: the payload is reported through the Failed record below, so
    // the hook's stderr dump would only duplicate it.
    let result = defines_telemetry::quiet_panics(|| {
        catch_unwind(AssertUnwindSafe(|| {
            if let Some(lb) = lower_bound {
                let bound = lb(point);
                if bound > best {
                    return Outcome::Pruned { lower_bound: bound };
                }
            }
            let cost = {
                let _span = span!("engine.execute", point = index);
                failpoint!("engine.execute");
                evaluate(point)
            };
            let value = objective(point, &cost);
            Outcome::Evaluated { cost, value }
        }))
    });
    result.unwrap_or_else(|payload| {
        CAUGHT_PANICS.incr();
        Outcome::Failed {
            error: panic_error(payload.as_ref()),
        }
    })
}

/// Renders a caught panic payload as a failed record's error string.
fn panic_error(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Lock-free minimum update of an f64 stored as bits. All objective values
/// are non-negative and finite, so the bit patterns order like the floats.
fn atomic_f64_min(cell: &AtomicU64, value: f64) {
    let mut current = cell.load(Ordering::Relaxed);
    loop {
        if f64::from_bits(current) <= value {
            return;
        }
        match cell.compare_exchange_weak(
            current,
            value.to_bits(),
            Ordering::Relaxed,
            Ordering::Relaxed,
        ) {
            Ok(_) => return,
            Err(seen) => current = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    /// A toy quadratic objective over integer points.
    fn toy_eval(p: &i64) -> f64 {
        (*p as f64 - 3.0).powi(2)
    }

    #[test]
    fn sequential_and_parallel_collect_identically() {
        let points: Vec<i64> = (0..40).collect();
        let seq = SweepEngine::new(EngineConfig::sequential());
        let par = SweepEngine::new(EngineConfig::parallel().with_threads(4).with_pruning(false));
        let (a, _) = seq.run_collect(
            &points,
            &toy_eval,
            &|_, c: &f64| *c,
            None::<&fn(&i64) -> f64>,
        );
        let (b, _) = par.run_collect(
            &points,
            &toy_eval,
            &|_, c: &f64| *c,
            None::<&fn(&i64) -> f64>,
        );
        let costs_a: Vec<f64> = a.iter().map(|r| r.value().unwrap()).collect();
        let costs_b: Vec<f64> = b.iter().map(|r| r.value().unwrap()).collect();
        assert_eq!(costs_a, costs_b);
        assert_eq!(
            a.iter().map(|r| r.index).collect::<Vec<_>>(),
            (0..40).collect::<Vec<_>>()
        );
    }

    #[test]
    fn pruning_skips_but_never_changes_the_best() {
        // Sound lower bound: half the true value.
        let lb = |p: &i64| toy_eval(p) / 2.0;
        let points: Vec<i64> = (0..200).collect();
        for threads in [1, 4] {
            let engine = SweepEngine::new(EngineConfig::parallel().with_threads(threads));
            let (records, stats) =
                engine.run_collect(&points, &toy_eval, &|_, c: &f64| *c, Some(&lb));
            let best = SweepEngine::best_record(records).unwrap();
            assert_eq!(best.point, 3);
            assert_eq!(stats.evaluated + stats.pruned, 200);
            if threads == 1 {
                assert!(
                    stats.pruned > 0,
                    "sequential pruning should fire on far points"
                );
            }
        }
    }

    #[test]
    fn strict_pruning_preserves_tie_breaking() {
        // Every point has the same value and a tight (equal) bound: nothing
        // may be pruned, and the best must be the lowest index.
        let points: Vec<i64> = (0..16).collect();
        let engine = SweepEngine::new(EngineConfig::sequential().with_pruning(true));
        let (records, stats) = engine.run_collect(
            &points,
            &|_: &i64| 7.0f64,
            &|_, c: &f64| *c,
            Some(&|_: &i64| 7.0),
        );
        assert_eq!(stats.pruned, 0);
        assert_eq!(SweepEngine::best_record(records).unwrap().index, 0);
    }

    #[test]
    fn streaming_marks_best_so_far() {
        let points: Vec<i64> = vec![9, 5, 5, 1];
        let engine = SweepEngine::new(EngineConfig::sequential());
        let mut flags = Vec::new();
        engine.run(
            &points,
            &|p: &i64| *p as f64,
            &|_, c: &f64| *c,
            None::<&fn(&i64) -> f64>,
            |r| flags.push(r.is_best_so_far),
        );
        assert_eq!(flags, vec![true, true, false, true]);
    }

    #[test]
    fn every_point_is_evaluated_exactly_once_in_parallel() {
        let counter = AtomicUsize::new(0);
        let points: Vec<i64> = (0..100).collect();
        let engine = SweepEngine::new(EngineConfig::parallel().with_threads(8).with_pruning(false));
        let (records, stats) = engine.run_collect(
            &points,
            &|p: &i64| {
                counter.fetch_add(1, Ordering::Relaxed);
                *p as f64
            },
            &|_, c: &f64| *c,
            None::<&fn(&i64) -> f64>,
        );
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(records.len(), 100);
        assert_eq!(stats.evaluated, 100);
    }

    #[test]
    fn merged_stats_sum_counts_and_keep_widest_thread_count() {
        let a = SweepStats {
            label: "a".into(),
            points: 4,
            evaluated: 3,
            pruned: 1,
            failed: 0,
            threads: 2,
            elapsed: Duration::from_millis(10),
            cache: None,
        };
        let b = SweepStats {
            label: "b".into(),
            points: 6,
            evaluated: 5,
            pruned: 0,
            failed: 1,
            threads: 1,
            elapsed: Duration::from_millis(5),
            cache: None,
        };
        let merged = SweepStats::merged("both", [&a, &b]);
        assert_eq!(merged.label, "both");
        assert_eq!(merged.points, 10);
        assert_eq!(merged.evaluated, 8);
        assert_eq!(merged.pruned, 1);
        assert_eq!(merged.failed, 1);
        assert_eq!(merged.threads, 2);
        assert_eq!(merged.elapsed, Duration::from_millis(15));
        assert!(merged.cache.is_none());
        let empty = SweepStats::merged("none", []);
        assert_eq!(empty.points, 0);
        assert_eq!(empty.elapsed, Duration::ZERO);
    }

    #[test]
    fn points_per_second_guards_zero_elapsed() {
        // An instantaneous run (elapsed rounds to zero) must report a rate
        // of zero, not Inf/NaN.
        let instant = SweepStats {
            label: String::new(),
            points: 10,
            evaluated: 10,
            pruned: 0,
            failed: 0,
            threads: 1,
            elapsed: Duration::ZERO,
            cache: None,
        };
        assert_eq!(instant.points_per_second(), 0.0);
        assert!(instant.points_per_second().is_finite());
    }

    #[test]
    fn points_per_second_guards_empty_run() {
        // An empty sweep: zero points over zero time is zero, and merging
        // nothing stays well-defined.
        let empty = SweepStats::merged("empty", []);
        assert_eq!(empty.evaluated, 0);
        assert_eq!(empty.points_per_second(), 0.0);
        assert!(empty.points_per_second().is_finite());
        // Non-zero elapsed with zero evaluated is a plain 0 rate.
        let idle = SweepStats {
            elapsed: Duration::from_millis(5),
            ..empty
        };
        assert_eq!(idle.points_per_second(), 0.0);
    }

    /// Sweeps 0..20 with an evaluator that panics on point 13, at the given
    /// thread count, and returns the records plus stats.
    fn sweep_with_panicking_point(threads: usize) -> (Vec<SweepRecord<i64, f64>>, SweepStats) {
        let points: Vec<i64> = (0..20).collect();
        let engine = if threads <= 1 {
            SweepEngine::new(EngineConfig::sequential())
        } else {
            SweepEngine::new(EngineConfig::parallel().with_threads(threads))
        };
        engine.run_collect(
            &points,
            &|p: &i64| {
                if *p == 13 {
                    panic!("injected failure for point {p}");
                }
                (*p as f64) * 2.0
            },
            &|_, c: &f64| *c,
            None::<&fn(&i64) -> f64>,
        )
    }

    #[test]
    fn panicking_point_becomes_failed_record() {
        let (records, stats) = sweep_with_panicking_point(1);
        assert_eq!(stats.evaluated, 19);
        assert_eq!(stats.failed, 1);
        match &records[13].outcome {
            Outcome::Failed { error } => {
                assert_eq!(error, "injected failure for point 13");
            }
            other => panic!("expected Failed outcome, got {other:?}"),
        }
        assert_eq!(records[13].value(), None);
        // Every sibling evaluated normally.
        for (i, record) in records.iter().enumerate() {
            if i != 13 {
                assert_eq!(record.value(), Some((i as f64) * 2.0));
            }
        }
    }

    #[test]
    fn panicking_point_leaves_siblings_bit_identical_in_parallel() {
        let (seq, seq_stats) = sweep_with_panicking_point(1);
        let (par, par_stats) = sweep_with_panicking_point(8);
        assert_eq!(par_stats.evaluated, seq_stats.evaluated);
        assert_eq!(par_stats.failed, 1);
        for (s, p) in seq.iter().zip(&par) {
            assert_eq!(s.index, p.index);
            assert_eq!(s.value().map(f64::to_bits), p.value().map(f64::to_bits));
        }
    }

    #[test]
    fn failed_records_serialize_with_error_string() {
        let record = SweepRecord {
            index: 0,
            point: 1i64,
            outcome: Outcome::<f64>::Failed {
                error: "boom".into(),
            },
            is_best_so_far: false,
        };
        let json = serde::Serialize::to_value(&record).to_json();
        assert!(json.contains("\"Failed\""));
        assert!(json.contains("\"error\":\"boom\""));
    }

    #[test]
    fn records_serialize_to_json() {
        let record = SweepRecord {
            index: 2,
            point: 5i64,
            outcome: Outcome::Evaluated {
                cost: 1.5f64,
                value: 1.5,
            },
            is_best_so_far: true,
        };
        let json = serde::Serialize::to_value(&record).to_json();
        assert!(json.contains("\"index\":2"));
        assert!(json.contains("Evaluated"));
    }
}
