//! A sharded, thread-safe memoization cache with hit/miss accounting.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Number of independent shards; keys are distributed by hash so concurrent
/// workers rarely contend on the same lock.
const SHARDS: usize = 16;

/// Hit/miss statistics of a [`MemoCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to compute the value.
    pub misses: u64,
    /// The subset of `hits` that were only found because the caller
    /// *canonicalized* its key first — the raw problem differed from the
    /// cached one but provably maps to the same value (see
    /// [`MemoCache::record_canonical_hit`]). Without canonicalization these
    /// lookups would have been misses, so tracking them separately keeps the
    /// plain hit/miss ratio comparable across cache-key schemes.
    pub canonical_hits: u64,
    /// Distinct entries currently stored.
    pub entries: usize,
}

impl CacheStats {
    /// The counter delta since an earlier snapshot of the same cache:
    /// hits / misses / canonical hits are differenced (so the result
    /// describes one run, not the cache's lifetime), while `entries` stays
    /// the current absolute count.
    pub fn since(&self, before: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits - before.hits,
            misses: self.misses - before.misses,
            canonical_hits: self.canonical_hits - before.canonical_hits,
            entries: self.entries,
        }
    }

    /// Fraction of lookups answered from the cache (0 when never queried).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded map from problem keys to computed values.
///
/// `get_or_insert_with` does **not** hold any lock while computing a missing
/// value, so long computations (a temporal-mapping search, say) never
/// serialize other workers. Two threads may race to compute the same key;
/// with a deterministic computation both produce the same value and the
/// second insert is a no-op, so results never depend on the interleaving.
pub struct MemoCache<K, V> {
    shards: Vec<Mutex<HashMap<K, V>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    canonical_hits: AtomicU64,
}

impl<K, V> std::fmt::Debug for MemoCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemoCache")
            .field("hits", &self.hits.load(Ordering::Relaxed))
            .field("misses", &self.misses.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl<K: Hash + Eq, V: Clone> Default for MemoCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Hash + Eq, V: Clone> MemoCache<K, V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            canonical_hits: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &K) -> &Mutex<HashMap<K, V>> {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// Locks a shard, recovering from poisoning. Sound because no code path
    /// mutates a shard in a way that can be observed half-done: values are
    /// computed *outside* the lock and inserted with a single `entry()` call,
    /// so a panicking thread can at worst leave the map exactly as it found
    /// it — the poison flag carries no information here. Recovery keeps a
    /// sweep alive after a worker panic (which the engine now catches and
    /// reports as a failed point) instead of cascading `PoisonError` panics
    /// through every other worker sharing the cache.
    fn lock_shard(shard: &Mutex<HashMap<K, V>>) -> MutexGuard<'_, HashMap<K, V>> {
        shard.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Returns the cached value for `key`, computing and inserting it on a
    /// miss.
    pub fn get_or_insert_with(&self, key: K, compute: impl FnOnce() -> V) -> V {
        self.get_or_insert_with_meta(key, compute).0
    }

    /// Like [`MemoCache::get_or_insert_with`], additionally reporting whether
    /// the lookup was answered from the cache (`true`) or computed (`false`).
    pub fn get_or_insert_with_meta(&self, key: K, compute: impl FnOnce() -> V) -> (V, bool) {
        let shard = self.shard(&key);
        if let Some(hit) = Self::lock_shard(shard).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return (hit.clone(), true);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let value = compute();
        Self::lock_shard(shard)
            .entry(key)
            .or_insert_with(|| value.clone());
        (value, false)
    }

    /// Attributes the most recent hit to key canonicalization: the caller's
    /// raw key differed from the cached canonical one. Callers that
    /// canonicalize keys invoke this after a hit on a canonicalized key so
    /// [`CacheStats::canonical_hits`] counts the lookups that plain raw-key
    /// caching would have missed.
    pub fn record_canonical_hit(&self) {
        self.canonical_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// The cached value for `key`, if present (counts as a hit/miss).
    pub fn get(&self, key: &K) -> Option<V> {
        let found = Self::lock_shard(self.shard(key)).get(key).cloned();
        match &found {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        found
    }

    /// Inserts `value` for `key` without touching the hit/miss counters,
    /// returning `true` if the key was absent. Used to preload a cache from a
    /// persisted store: preloaded entries must not masquerade as run-time
    /// hits or misses, and an entry computed since the store was read wins
    /// over the stale persisted one.
    pub fn insert(&self, key: K, value: V) -> bool {
        match Self::lock_shard(self.shard(&key)).entry(key) {
            std::collections::hash_map::Entry::Occupied(_) => false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert(value);
                true
            }
        }
    }

    /// Removes `key`, returning its value if it was present. No effect on the
    /// hit/miss counters (eviction is bookkeeping, not a lookup).
    pub fn remove(&self, key: &K) -> Option<V> {
        Self::lock_shard(self.shard(key)).remove(key)
    }

    /// The cached value for `key` without counting a hit or miss — for
    /// bookkeeping reads (persistence) that must not distort the lookup
    /// statistics.
    pub fn peek(&self, key: &K) -> Option<V> {
        Self::lock_shard(self.shard(key)).get(key).cloned()
    }

    /// All entries, in unspecified (shard) order. Callers that need
    /// determinism must sort; the cache itself has no key ordering.
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        K: Clone,
    {
        let mut out = Vec::new();
        for shard in &self.shards {
            let guard = Self::lock_shard(shard);
            out.extend(guard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }

    /// Number of distinct entries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| Self::lock_shard(s).len()).sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all entries and resets the statistics.
    pub fn clear(&self) {
        for shard in &self.shards {
            Self::lock_shard(shard).clear();
        }
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.canonical_hits.store(0, Ordering::Relaxed);
    }

    /// Current hit/miss statistics.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            canonical_hits: self.canonical_hits.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn caches_and_counts() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        let computed = AtomicUsize::new(0);
        for _ in 0..3 {
            for k in 0..4u64 {
                let v = cache.get_or_insert_with(k, || {
                    computed.fetch_add(1, Ordering::Relaxed);
                    k * 10
                });
                assert_eq!(v, k * 10);
            }
        }
        assert_eq!(computed.load(Ordering::Relaxed), 4);
        let stats = cache.stats();
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.hits, 8);
        assert_eq!(stats.entries, 4);
        assert!((stats.hit_rate() - 8.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn since_reports_per_run_deltas() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        cache.get_or_insert_with(1, || 10);
        cache.get_or_insert_with(1, || 10);
        let before = cache.stats();
        cache.get_or_insert_with(2, || 20);
        cache.get_or_insert_with(1, || 10);
        cache.record_canonical_hit();
        let delta = cache.stats().since(&before);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.canonical_hits, 1);
        // Entries stay absolute: they describe the cache, not the run.
        assert_eq!(delta.entries, 2);
    }

    #[test]
    fn clear_resets_everything() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        cache.get_or_insert_with(1, || 2);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn poisoned_shard_recovers_with_identical_results() {
        use std::sync::atomic::AtomicBool;
        static PANIC_ON_CLONE: AtomicBool = AtomicBool::new(false);
        #[derive(Debug, PartialEq)]
        struct Explosive(u64);
        impl Clone for Explosive {
            fn clone(&self) -> Self {
                if PANIC_ON_CLONE.load(Ordering::Relaxed) {
                    panic!("injected clone panic");
                }
                Explosive(self.0)
            }
        }
        let cache: MemoCache<u64, Explosive> = MemoCache::new();
        cache.get_or_insert_with(7, || Explosive(70));
        // Genuinely poison the shard: the hit path clones the value while the
        // shard guard is held, so a panicking clone unwinds through the lock.
        PANIC_ON_CLONE.store(true, Ordering::Relaxed);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| cache.get(&7)));
        assert!(result.is_err(), "clone under the shard lock must panic");
        PANIC_ON_CLONE.store(false, Ordering::Relaxed);
        // The shard recovers with its pre-panic contents intact.
        assert_eq!(cache.get_or_insert_with(7, || Explosive(0)).0, 70);
        assert_eq!(cache.len(), 1);
        for k in 0..32u64 {
            // Touch every shard to prove none propagates PoisonError.
            assert_eq!(cache.get_or_insert_with(k + 100, || Explosive(k)).0, k);
        }
    }

    #[test]
    fn concurrent_access_is_consistent() {
        let cache: MemoCache<u64, u64> = MemoCache::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for k in 0..64u64 {
                        assert_eq!(cache.get_or_insert_with(k, || k + 1), k + 1);
                    }
                });
            }
        });
        assert_eq!(cache.len(), 64);
        let stats = cache.stats();
        assert_eq!(stats.hits + stats.misses, 4 * 64);
    }
}
