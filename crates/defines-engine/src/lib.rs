//! The DeFiNES exploration engine: generic machinery for sweeping large
//! design spaces fast.
//!
//! DeFiNES' value proposition is *fast* exploration of the depth-first
//! scheduling space; this crate owns the three mechanisms that deliver the
//! speed, decoupled from what is being explored:
//!
//! * [`SweepEngine`] — a work-queue parallel executor that fans design points
//!   out across worker threads and streams [`SweepRecord`]s back in
//!   completion order, with best-so-far tracking,
//! * [`MemoCache`] — a sharded, thread-safe memoization cache with hit/miss
//!   accounting, used by `defines-mapping` to run the LOMA temporal-mapping
//!   search once per *distinct* sub-problem instead of once per design point,
//! * lower-bound pruning — an optional cheap bound `lb(point)`; points whose
//!   bound already exceeds the best evaluated value are skipped without
//!   paying for a full evaluation, without ever changing the best result
//!   (pruning uses a strict comparison, so ties are never pruned).
//!
//! The engine is deliberately generic over points, costs and evaluation
//! closures: `defines-core` instantiates it with `DfStrategy`/`NetworkCost`
//! for the paper's (tile size × overlap mode × fuse depth) space, and the
//! same machinery serves per-stack "best combination" searches and the
//! `defines-cli` sweep binary.
//!
//! # Determinism
//!
//! Records stream in completion order (nondeterministic under threads), but
//! each record carries the index of its design point, so ordered collection
//! ([`SweepEngine::run_collect`]) is deterministic: with a deterministic
//! evaluator it returns bit-identical results regardless of thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod fnv;
pub mod memo;

pub use engine::{EngineConfig, Outcome, SweepEngine, SweepRecord, SweepStats};
pub use fnv::Fnv;
pub use memo::{CacheStats, MemoCache};
