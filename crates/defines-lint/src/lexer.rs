//! A small self-contained token-level Rust lexer.
//!
//! The rules in this crate do not need a parse tree — every invariant they
//! enforce is visible at the token level (identifier sequences, comment
//! placement, brace nesting). What they *do* need is for string literals and
//! comments to be lexed correctly, so that `"HashMap"` inside a string or a
//! commented-out `unsafe` never triggers a rule. This lexer covers the full
//! Rust literal surface the workspace uses: line and (nested) block comments,
//! string/char/byte literals, raw strings (`r"…"`, `r#"…"#`), raw
//! identifiers (`r#type`), lifetimes, and numeric literals including
//! `0..n` range punctuation.

/// One lexed token. Comments are collected separately in [`Lexed::comments`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`for`, `unsafe`, `HashMap`, …).
    Ident(String),
    /// A single punctuation character; multi-character operators appear as
    /// consecutive `Punct` tokens (`::` is `Punct(':') Punct(':')`).
    Punct(char),
    /// A string/char/byte/numeric literal. The content is irrelevant to every
    /// rule, so it is not retained.
    Literal,
    /// A lifetime (`'a`); distinguished from char literals.
    Lifetime,
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// A comment (line or block, doc or plain) with its line extent and text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Comment text without the `//` / `/*` markers.
    pub text: String,
    /// 1-based first line.
    pub start_line: u32,
    /// 1-based last line (equal to `start_line` for line comments).
    pub end_line: u32,
}

/// The result of lexing one file: code tokens, comments, and which lines
/// carry code (used to decide whether a line is comment-only).
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code tokens in source order.
    pub tokens: Vec<Token>,
    /// Comments in source order.
    pub comments: Vec<Comment>,
    /// Sorted list of 1-based lines that contain at least one code token.
    code_lines: Vec<u32>,
}

impl Lexed {
    /// Whether `line` contains at least one code token.
    pub fn is_code_line(&self, line: u32) -> bool {
        self.code_lines.binary_search(&line).is_ok()
    }

    /// The first code-bearing line strictly after `line`, if any.
    pub fn next_code_line(&self, line: u32) -> Option<u32> {
        match self.code_lines.binary_search(&(line + 1)) {
            Ok(i) => Some(self.code_lines[i]),
            Err(i) => self.code_lines.get(i).copied(),
        }
    }

    /// Whether `line` is covered by a comment and carries no code tokens.
    pub fn is_comment_only_line(&self, line: u32) -> bool {
        !self.is_code_line(line)
            && self
                .comments
                .iter()
                .any(|c| c.start_line <= line && line <= c.end_line)
    }

    /// Concatenated text of every comment that intersects the contiguous
    /// block of comment-only lines ending at `line` (inclusive). Empty if
    /// `line` itself is not comment-only.
    pub fn comment_block_ending_at(&self, line: u32) -> String {
        if line == 0 || !self.is_comment_only_line(line) {
            return String::new();
        }
        let mut first = line;
        while first > 1 && self.is_comment_only_line(first - 1) {
            first -= 1;
        }
        let mut text = String::new();
        for c in &self.comments {
            if c.start_line <= line && c.end_line >= first {
                text.push_str(&c.text);
                text.push('\n');
            }
        }
        text
    }

    /// Concatenated text of comments that touch `line` itself (trailing
    /// comments on a code line included).
    pub fn comments_on_line(&self, line: u32) -> String {
        let mut text = String::new();
        for c in &self.comments {
            if c.start_line <= line && line <= c.end_line {
                text.push_str(&c.text);
                text.push('\n');
            }
        }
        text
    }
}

/// Lexes `source` into tokens and comments.
pub fn lex(source: &str) -> Lexed {
    let bytes: Vec<char> = source.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    let n = bytes.len();

    let push_code_line = |out: &mut Lexed, line: u32| {
        if out.code_lines.last() != Some(&line) {
            out.code_lines.push(line);
        }
    };

    while i < n {
        let c = bytes[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if i + 1 < n && bytes[i + 1] == '/' => {
                let start = i + 2;
                let mut end = start;
                while end < n && bytes[end] != '\n' {
                    end += 1;
                }
                out.comments.push(Comment {
                    text: bytes[start..end].iter().collect(),
                    start_line: line,
                    end_line: line,
                });
                i = end;
            }
            '/' if i + 1 < n && bytes[i + 1] == '*' => {
                let start_line = line;
                let mut depth = 1u32;
                let mut j = i + 2;
                let mut text = String::new();
                while j < n && depth > 0 {
                    if bytes[j] == '/' && j + 1 < n && bytes[j + 1] == '*' {
                        depth += 1;
                        j += 2;
                    } else if bytes[j] == '*' && j + 1 < n && bytes[j + 1] == '/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        if bytes[j] == '\n' {
                            line += 1;
                        }
                        text.push(bytes[j]);
                        j += 1;
                    }
                }
                out.comments.push(Comment {
                    text,
                    start_line,
                    end_line: line,
                });
                i = j;
            }
            '"' => {
                push_code_line(&mut out, line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = skip_string(&bytes, i, &mut line);
            }
            'r' | 'b' if is_raw_or_byte_string(&bytes, i) => {
                push_code_line(&mut out, line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = skip_raw_or_byte_string(&bytes, i, &mut line);
            }
            '\'' => {
                // Lifetime vs char literal: a lifetime is `'` followed by an
                // identifier NOT terminated by a closing quote.
                let is_lifetime =
                    i + 1 < n && (bytes[i + 1].is_alphabetic() || bytes[i + 1] == '_') && {
                        let mut j = i + 2;
                        while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                            j += 1;
                        }
                        !(j < n && bytes[j] == '\'')
                    };
                push_code_line(&mut out, line);
                if is_lifetime {
                    let mut j = i + 1;
                    while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    }
                    out.tokens.push(Token {
                        kind: TokenKind::Lifetime,
                        line,
                    });
                    i = j;
                } else {
                    out.tokens.push(Token {
                        kind: TokenKind::Literal,
                        line,
                    });
                    i = skip_char_literal(&bytes, i);
                }
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                // Raw identifier `r#name`: strip the prefix so rules compare
                // against the bare name.
                let text: String = if bytes[start] == 'r'
                    && j == start + 1
                    && j + 1 < n
                    && bytes[j] == '#'
                    && (bytes[j + 1].is_alphabetic() || bytes[j + 1] == '_')
                {
                    let mut k = j + 1;
                    while k < n && (bytes[k].is_alphanumeric() || bytes[k] == '_') {
                        k += 1;
                    }
                    let t = bytes[j + 1..k].iter().collect();
                    j = k;
                    t
                } else {
                    bytes[start..j].iter().collect()
                };
                push_code_line(&mut out, line);
                out.tokens.push(Token {
                    kind: TokenKind::Ident(text),
                    line,
                });
                i = j;
            }
            c if c.is_ascii_digit() => {
                let mut j = i + 1;
                loop {
                    if j < n && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                        j += 1;
                    } else if j + 1 < n
                        && bytes[j] == '.'
                        && bytes[j + 1].is_ascii_digit()
                        && (j == 0 || bytes[j - 1] != '.')
                    {
                        // Decimal point, but never the `..` of a range.
                        j += 2;
                    } else {
                        break;
                    }
                }
                push_code_line(&mut out, line);
                out.tokens.push(Token {
                    kind: TokenKind::Literal,
                    line,
                });
                i = j;
            }
            c => {
                push_code_line(&mut out, line);
                out.tokens.push(Token {
                    kind: TokenKind::Punct(c),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// Whether position `i` starts a raw string (`r"`, `r#"…"#`), byte string
/// (`b"`, `br"`, `br#"`) or byte char (`b'`). `r#ident` (a raw identifier)
/// does not match: the hashes must be followed by a quote.
fn is_raw_or_byte_string(bytes: &[char], i: usize) -> bool {
    let peek = |k: usize| bytes.get(i + k).copied().unwrap_or('\0');
    let hashes_then_quote = |mut k: usize| {
        while peek(k) == '#' {
            k += 1;
        }
        peek(k) == '"'
    };
    match bytes[i] {
        'r' => hashes_then_quote(1),
        'b' => peek(1) == '"' || peek(1) == '\'' || (peek(1) == 'r' && hashes_then_quote(2)),
        _ => false,
    }
}

/// Skips a `"…"` string starting at `i`, tracking newlines.
fn skip_string(bytes: &[char], i: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    let mut j = i + 1;
    while j < n {
        match bytes[j] {
            '\\' => j += 2,
            '"' => return j + 1,
            '\n' => {
                *line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    j
}

/// Skips a raw/byte string (or byte char) starting at `i`.
fn skip_raw_or_byte_string(bytes: &[char], i: usize, line: &mut u32) -> usize {
    let n = bytes.len();
    let mut j = i;
    let mut raw = false;
    // Skip the `b` / `r` / `br` prefix.
    while j < n && (bytes[j] == 'b' || bytes[j] == 'r') && j < i + 2 {
        raw |= bytes[j] == 'r';
        j += 1;
    }
    if j < n && bytes[j] == '\'' {
        return skip_char_literal(bytes, j);
    }
    let mut hashes = 0usize;
    while j < n && bytes[j] == '#' {
        hashes += 1;
        j += 1;
    }
    if j >= n || bytes[j] != '"' {
        return j;
    }
    j += 1;
    if raw {
        // Raw string: ends at `"` followed by `hashes` '#' characters; no
        // escape processing.
        while j < n {
            if bytes[j] == '\n' {
                *line += 1;
            } else if bytes[j] == '"' {
                let mut k = 0;
                while k < hashes && bytes.get(j + 1 + k) == Some(&'#') {
                    k += 1;
                }
                if k == hashes {
                    return j + 1 + hashes;
                }
            }
            j += 1;
        }
        j
    } else {
        // Plain byte string: same escape rules as a normal string.
        skip_string(bytes, j - 1, line)
    }
}

/// Skips a `'…'` char literal starting at `i` (handles `'\''`, `'\u{…}'`).
fn skip_char_literal(bytes: &[char], i: usize) -> usize {
    let n = bytes.len();
    let mut j = i + 1;
    while j < n {
        match bytes[j] {
            '\\' => j += 2,
            '\'' => return j + 1,
            _ => j += 1,
        }
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.kind {
                TokenKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_keywords() {
        let src = r##"
            let a = "unsafe HashMap"; // unsafe in a comment
            /* block with unsafe */
            let b = r#"raw unsafe"#;
            let c = 'u';
            let d = b"unsafe";
        "##;
        let ids = idents(src);
        assert!(
            !ids.iter().any(|s| s == "unsafe" || s == "HashMap"),
            "{ids:?}"
        );
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let lexed = lex(src);
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 3);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 1);
        assert_eq!(idents(src), vec!["fn", "f"]);
    }

    #[test]
    fn ranges_are_not_decimals() {
        let src = "for i in 0..10 { let x = 1.5; }";
        let lexed = lex(src);
        let puncts: Vec<char> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.kind {
                TokenKind::Punct(c) => Some(c),
                _ => None,
            })
            .collect();
        assert_eq!(
            puncts.iter().filter(|&&c| c == '.').count(),
            2,
            "{puncts:?}"
        );
    }

    #[test]
    fn raw_identifiers_strip_prefix() {
        assert_eq!(idents("let r#type = 1;"), vec!["let", "type"]);
    }

    #[test]
    fn comment_blocks_and_line_queries() {
        let src = "fn a() {}\n// one\n// SAFETY: two\nfn b() {}\n";
        let lexed = lex(src);
        assert!(lexed.is_code_line(1));
        assert!(lexed.is_comment_only_line(2));
        assert!(lexed.is_comment_only_line(3));
        assert!(lexed.comment_block_ending_at(3).contains("SAFETY:"));
        assert!(lexed.comment_block_ending_at(1).is_empty());
        assert_eq!(lexed.next_code_line(1), Some(4));
    }
}
