//! Deterministic workspace walk: finds every `.rs` and `Cargo.toml`, lints
//! each, and runs the workspace-level crate-root attribute pass.
//!
//! The walk itself obeys the invariant it enforces: directory entries are
//! visited in sorted order and findings are reported sorted by
//! `(file, line, rule)`, so the linter's own output is byte-stable.

use crate::manifest::{lint_manifest, WorkspaceDeps};
use crate::rules::{check_crate_root_attr, lint_source, Finding};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into. `fixtures` holds the linter's own
/// deliberately-bad test corpus; `target` holds generated code.
const SKIP_DIRS: [&str; 2] = ["target", "fixtures"];

/// Collects workspace-relative paths of every lintable file under `root`,
/// sorted.
fn collect_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_str()) {
                continue;
            }
            collect_files(root, &path, out)?;
        } else if name == "Cargo.toml" || name.ends_with(".rs") {
            let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// Lints the whole tree rooted at `root`: every `.rs` through the source
/// rules, every `Cargo.toml` through the vendoring rule, plus the
/// crate-root attribute pass for each `crates/` crate. Findings are sorted
/// by `(file, line, rule)`.
pub fn lint_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_files(root, root, &mut files)?;
    files.sort();

    let ws = match fs::read_to_string(root.join("Cargo.toml")) {
        Ok(content) => WorkspaceDeps::from_root_manifest(&content),
        Err(_) => WorkspaceDeps::default(),
    };

    let mut findings = Vec::new();
    for rel in &files {
        let content = fs::read_to_string(root.join(rel))?;
        if rel.file_name().is_some_and(|n| n == "Cargo.toml") {
            findings.extend(lint_manifest(rel, &content, &ws));
            // The crate-root attribute half of unsafe-hygiene: every crate
            // under crates/ must pin its unsafe posture at the root.
            let mut comps = rel.components();
            let under_crates = comps.next().is_some_and(|c| c.as_os_str() == "crates");
            let is_crate_manifest = under_crates && comps.clone().count() == 2;
            if is_crate_manifest {
                let crate_dir = rel.parent().unwrap_or(Path::new(""));
                for root_file in ["src/lib.rs", "src/main.rs"] {
                    let rel_root = crate_dir.join(root_file);
                    if let Ok(src) = fs::read_to_string(root.join(&rel_root)) {
                        findings.extend(check_crate_root_attr(&rel_root, &src));
                    }
                }
            }
        } else {
            findings.extend(lint_source(rel, &content));
        }
    }
    findings.sort();
    findings.dedup();
    Ok(findings)
}

/// Walks upward from `start` to the nearest directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(content) = fs::read_to_string(&manifest) {
            if content.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}
