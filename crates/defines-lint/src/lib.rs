//! `defines-lint` — the workspace invariant checker.
//!
//! This repo's signature guarantee is that results are **bit-identical**
//! across thread counts, cache states, and JSON/builtin frontends. That
//! guarantee is a property of the *code shape*, not of any one test: a
//! `HashMap` iterated into a report, an f64 reduction over an unordered
//! iterator, or a wall-clock read in a cost path can all pass every parity
//! test on one machine and still break byte-identity on the next. This crate
//! turns those conventions into mechanically checked, named rules:
//!
//! | rule | enforces |
//! |------|----------|
//! | `unordered-iter` | no iteration over `HashMap`/`HashSet` bindings in non-test code unless the site feeds a sort |
//! | `wall-clock` | `Instant::now`/`SystemTime` only in `defines-telemetry`, `defines-bench`, and bench/test targets |
//! | `unsafe-hygiene` | every `unsafe` preceded by `// SAFETY:`; `crates/` roots declare `#![forbid(unsafe_code)]` or `#![deny(unsafe_op_in_unsafe_fn)]` |
//! | `float-order` | no f64 `sum`/`fold`/`product` over unordered iterators in `defines-core`/`defines-mapping` |
//! | `vendoring` | every `Cargo.toml` dependency resolves to `vendor/` or a workspace crate |
//!
//! Sites that are deliberately exempt carry a justified annotation the rule
//! checks for:
//!
//! ```text
//! // lint:allow(wall-clock, elapsed feeds the stats report only)
//! let start = Instant::now();
//! ```
//!
//! The analysis is token-level — a small self-contained Rust [`lexer`] and a
//! TOML-subset [`manifest`] parser, no crates.io dependencies — which keeps
//! it fast (the whole workspace lints in tens of milliseconds) and honest:
//! the linter that audits the vendoring policy has no dependencies of its
//! own. Token-level also means heuristic: bindings are tracked by declared
//! type or constructor call, not full type inference. The rules err toward
//! silence on code they cannot see through, and every rule is individually
//! allowlistable at the site level for the cases they misjudge.
//!
//! # Library use
//!
//! ```
//! use defines_lint::{lint_source, Rule};
//! use std::path::Path;
//!
//! let findings = lint_source(
//!     Path::new("crates/defines-core/src/demo.rs"),
//!     "fn f(m: &std::collections::HashMap<u32, u32>) -> u32 {\n\
//!          m.values().copied().sum()\n\
//!      }\n",
//! );
//! assert_eq!(findings.len(), 1);
//! assert_eq!(findings[0].rule, Rule::FloatOrder);
//! assert_eq!(findings[0].line, 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod walk;

pub use manifest::{lint_manifest, parse_dependencies, DepSite, WorkspaceDeps};
pub use rules::{check_crate_root_attr, lint_source, Finding, Rule, SourceContext};
pub use walk::{find_workspace_root, lint_tree};
