//! The `defines-lint` binary: lints the workspace tree and exits nonzero on
//! any finding.
//!
//! ```text
//! cargo run -p defines-lint --release              # lint the whole workspace
//! cargo run -p defines-lint --release -- --root X  # lint another tree
//! cargo run -p defines-lint --release -- --list-rules
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use defines_lint::{find_workspace_root, lint_tree, Rule};
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root: Option<PathBuf> = None;
    let mut quiet = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--root needs a path");
                    return ExitCode::from(2);
                }
            },
            "--quiet" | "-q" => quiet = true,
            "--list-rules" => {
                for rule in Rule::ALL {
                    println!("{:<15} {}", rule.name(), rule.summary());
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "defines-lint: workspace invariant checker\n\n\
                     USAGE: defines-lint [--root PATH] [--quiet] [--list-rules]\n\n\
                     Lints every .rs and Cargo.toml under the workspace root for\n\
                     determinism, unsafe hygiene and offline-vendoring violations.\n\
                     Exits 0 when clean, 1 on findings, 2 on usage/IO errors.\n\
                     Silence a site with: // lint:allow(<rule>, <reason>)"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("unknown flag `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => {
            eprintln!("no workspace root found (no Cargo.toml with [workspace] above cwd)");
            return ExitCode::from(2);
        }
    };

    let findings = match lint_tree(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("lint walk failed under {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if findings.is_empty() {
        if !quiet {
            println!("defines-lint: workspace clean ({} rules)", Rule::ALL.len());
        }
        ExitCode::SUCCESS
    } else {
        for finding in &findings {
            println!("{finding}");
        }
        println!(
            "defines-lint: {} finding(s) — each line is file:line [rule] message (fix hint)",
            findings.len()
        );
        ExitCode::FAILURE
    }
}
