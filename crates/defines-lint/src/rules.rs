//! The invariant rules applied to Rust sources, plus the `lint:allow`
//! annotation machinery shared by all of them.
//!
//! Every rule is named, reports `file:line`, and can be silenced per site
//! with a justified annotation:
//!
//! ```text
//! // lint:allow(wall-clock, elapsed feeds the stats report only)
//! let start = Instant::now();
//! ```
//!
//! The annotation covers its own line and the next code line; the reason is
//! mandatory (an empty reason or an unknown rule name is itself a finding,
//! so a typo cannot silently disable enforcement).

use crate::lexer::{lex, Lexed, Token, TokenKind};
use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// The named rules. `Rule::name()` is the public identifier used in reports
/// and in `lint:allow(...)` annotations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Iteration over a `HashMap`/`HashSet`-typed binding outside test code,
    /// without feeding a sort and without an annotation. Map order is
    /// nondeterministic per process, so any such site can leak iteration
    /// order into reports and break byte-identical output.
    UnorderedIter,
    /// `Instant::now` / `SystemTime` outside `defines-telemetry`,
    /// `defines-bench` and bench/test targets. Wall-clock reads in cost,
    /// search or engine paths are how timing sneaks into results.
    WallClock,
    /// `unsafe` without an immediately preceding `// SAFETY:` comment, or a
    /// `crates/` crate root missing `#![forbid(unsafe_code)]` /
    /// `#![deny(unsafe_op_in_unsafe_fn)]`.
    UnsafeHygiene,
    /// A floating-point reduction (`sum`/`fold`/`product`) over an unordered
    /// iterator in `defines-core`/`defines-mapping`: float addition is not
    /// associative, so reduction order changes the bits of the result.
    FloatOrder,
    /// A `Cargo.toml` dependency that does not resolve to a `vendor/` path
    /// or a workspace crate.
    Vendoring,
    /// A malformed `lint:allow` annotation (unknown rule or missing reason).
    BadAllow,
}

impl Rule {
    /// Every rule, in report order.
    pub const ALL: [Rule; 6] = [
        Rule::UnorderedIter,
        Rule::WallClock,
        Rule::UnsafeHygiene,
        Rule::FloatOrder,
        Rule::Vendoring,
        Rule::BadAllow,
    ];

    /// The public rule identifier used in reports and annotations.
    pub fn name(self) -> &'static str {
        match self {
            Rule::UnorderedIter => "unordered-iter",
            Rule::WallClock => "wall-clock",
            Rule::UnsafeHygiene => "unsafe-hygiene",
            Rule::FloatOrder => "float-order",
            Rule::Vendoring => "vendoring",
            Rule::BadAllow => "bad-allow",
        }
    }

    /// Parses a rule identifier as used in `lint:allow(...)`.
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.iter().copied().find(|r| r.name() == name)
    }

    /// One-line description of what the rule enforces, for `--list-rules`.
    pub fn summary(self) -> &'static str {
        match self {
            Rule::UnorderedIter => {
                "no iteration over HashMap/HashSet bindings in non-test code \
                 unless the site feeds a sort or carries an annotation"
            }
            Rule::WallClock => {
                "Instant::now/SystemTime only in defines-telemetry, \
                 defines-bench and bench/test targets"
            }
            Rule::UnsafeHygiene => {
                "every unsafe block/fn/impl preceded by a // SAFETY: comment; \
                 crates/ roots declare #![forbid(unsafe_code)] or \
                 #![deny(unsafe_op_in_unsafe_fn)]"
            }
            Rule::FloatOrder => {
                "no f64 sum/fold/product over unordered iterators in \
                 defines-core / defines-mapping"
            }
            Rule::Vendoring => {
                "every Cargo.toml dependency resolves to vendor/ or a \
                 workspace crate path"
            }
            Rule::BadAllow => "lint:allow annotations name a known rule and give a reason",
        }
    }
}

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Workspace-relative path of the offending file.
    pub file: PathBuf,
    /// 1-based line of the offending site.
    pub line: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// What is wrong at the site.
    pub message: String,
    /// How to fix it.
    pub hint: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (fix: {})",
            self.file.display(),
            self.line,
            self.rule.name(),
            self.message,
            self.hint
        )
    }
}

/// Where a source file sits in the workspace — drives per-rule scoping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SourceContext {
    /// Crate name for files under `crates/<name>/` or `vendor/<name>/`.
    pub crate_name: Option<String>,
    /// Whether the file lives under `vendor/`.
    pub in_vendor: bool,
    /// Whether the file is test-shaped by location: under a `tests/`,
    /// `benches/` or `examples/` directory anywhere in its path.
    pub is_test_path: bool,
}

impl SourceContext {
    /// Derives the context from a workspace-relative path.
    pub fn from_path(rel: &Path) -> SourceContext {
        let comps: Vec<String> = rel
            .components()
            .map(|c| c.as_os_str().to_string_lossy().into_owned())
            .collect();
        let crate_name = comps
            .iter()
            .position(|c| c == "crates" || c == "vendor")
            .and_then(|i| comps.get(i + 1))
            .cloned();
        SourceContext {
            crate_name,
            in_vendor: comps.first().is_some_and(|c| c == "vendor")
                || comps.iter().any(|c| c == "vendor"),
            is_test_path: comps
                .iter()
                .any(|c| c == "tests" || c == "benches" || c == "examples"),
        }
    }

    fn is_crate(&self, name: &str) -> bool {
        self.crate_name.as_deref() == Some(name)
    }
}

/// A parsed `lint:allow(rule, reason)` annotation.
struct Allow {
    rule: Rule,
    /// Lines the annotation covers: its own comment lines plus the next code
    /// line after the comment.
    covers: (u32, u32),
}

/// Extracts `lint:allow` annotations (and findings for malformed ones).
///
/// An annotation is a plain (non-doc) comment whose content *starts with*
/// `lint:allow` — documentation that merely mentions the syntax does not
/// count, so the linter can describe itself without silencing itself.
fn collect_allows(rel: &Path, lexed: &Lexed) -> (Vec<Allow>, Vec<Finding>) {
    let mut allows = Vec::new();
    let mut findings = Vec::new();
    for c in &lexed.comments {
        let trimmed = c.text.trim_start();
        // `///` and `//!` comments lex with a leading `/` or `!` — doc text,
        // never an annotation.
        if trimmed.starts_with('/') || trimmed.starts_with('!') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix("lint:allow") {
            let Some(body) = rest
                .strip_prefix('(')
                .and_then(|r| r.find(')').map(|end| &r[..end]))
            else {
                findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: c.start_line,
                    rule: Rule::BadAllow,
                    message: "malformed lint:allow annotation".into(),
                    hint: "write // lint:allow(<rule>, <reason>)".into(),
                });
                continue;
            };
            let (rule_name, reason) = match body.split_once(',') {
                Some((r, why)) => (r.trim(), why.trim()),
                None => (body.trim(), ""),
            };
            match Rule::from_name(rule_name) {
                Some(_) if reason.is_empty() => findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: c.start_line,
                    rule: Rule::BadAllow,
                    message: format!("lint:allow({rule_name}) has no reason"),
                    hint: "state why the site is sound: lint:allow(<rule>, <reason>)".into(),
                }),
                Some(rule) => {
                    // A trailing comment on a code line covers that line
                    // itself; a standalone comment covers the next code line.
                    let covers = if lexed.is_code_line(c.start_line) {
                        (c.start_line, c.start_line)
                    } else {
                        let last = lexed.next_code_line(c.end_line).unwrap_or(c.end_line);
                        (c.start_line.min(last), last)
                    };
                    allows.push(Allow { rule, covers });
                }
                None => findings.push(Finding {
                    file: rel.to_path_buf(),
                    line: c.start_line,
                    rule: Rule::BadAllow,
                    message: format!("lint:allow names unknown rule `{rule_name}`"),
                    hint: format!("known rules: {}", Rule::ALL.map(Rule::name).join(", ")),
                }),
            }
        }
    }
    (allows, findings)
}

/// Line ranges covered by `#[test]` / `#[cfg(test)]` items.
fn test_line_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        if !matches!(tokens[i].kind, TokenKind::Punct('#')) {
            i += 1;
            continue;
        }
        let Some(Token {
            kind: TokenKind::Punct('['),
            ..
        }) = tokens.get(i + 1)
        else {
            i += 1;
            continue;
        };
        // Scan the attribute body for the ident `test` (covers #[test],
        // #[cfg(test)], #[cfg(all(test, …))]).
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut is_test_attr = false;
        while let Some(t) = tokens.get(j) {
            match &t.kind {
                TokenKind::Punct('[') => depth += 1,
                TokenKind::Punct(']') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenKind::Ident(s) if s == "test" => is_test_attr = true,
                _ => {}
            }
            j += 1;
        }
        if !is_test_attr {
            i = j + 1;
            continue;
        }
        // The attribute's item extends to the matching `}` of its first
        // brace, or to the first `;` before any brace opens.
        let start_line = tokens[i].line;
        let mut k = j + 1;
        let mut brace_depth = 0i32;
        let mut end_line = start_line;
        while let Some(t) = tokens.get(k) {
            match t.kind {
                TokenKind::Punct('{') => brace_depth += 1,
                TokenKind::Punct('}') => {
                    brace_depth -= 1;
                    if brace_depth == 0 {
                        end_line = t.line;
                        break;
                    }
                }
                TokenKind::Punct(';') if brace_depth == 0 => {
                    end_line = t.line;
                    break;
                }
                _ => {}
            }
            end_line = t.line;
            k += 1;
        }
        ranges.push((start_line, end_line));
        i = k + 1;
    }
    ranges
}

fn in_ranges(ranges: &[(u32, u32)], line: u32) -> bool {
    ranges.iter().any(|&(a, b)| a <= line && line <= b)
}

fn ident_at(tokens: &[Token], i: usize) -> Option<&str> {
    match tokens.get(i).map(|t| &t.kind) {
        Some(TokenKind::Ident(s)) => Some(s.as_str()),
        _ => None,
    }
}

fn punct_at(tokens: &[Token], i: usize, c: char) -> bool {
    matches!(tokens.get(i).map(|t| &t.kind), Some(TokenKind::Punct(p)) if *p == c)
}

/// `::` at position `i` (two consecutive colon puncts).
fn path_sep_at(tokens: &[Token], i: usize) -> bool {
    punct_at(tokens, i, ':') && punct_at(tokens, i + 1, ':')
}

/// Single `:` at position `i` that is not part of `::`.
fn single_colon_at(tokens: &[Token], i: usize) -> bool {
    punct_at(tokens, i, ':')
        && !punct_at(tokens, i + 1, ':')
        && !(i > 0 && punct_at(tokens, i - 1, ':'))
}

const HASH_TYPES: [&str; 2] = ["HashMap", "HashSet"];

/// Methods whose call on a hash collection observes iteration order.
const ITER_METHODS: [&str; 9] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_keys",
    "into_values",
    "into_iter",
    "drain",
];

/// Identifiers that prove the iteration feeds an order-restoring boundary.
const SORT_MARKERS: [&str; 9] = [
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "BTreeMap",
    "BTreeSet",
    "BinaryHeap",
];

/// Float reductions whose result depends on operand order.
const FLOAT_REDUCERS: [&str; 3] = ["sum", "fold", "product"];

/// Skips leading `&`, `mut` and lifetimes in a type position; returns the
/// final identifier of the leading type path (`std::collections::HashMap<…`
/// → `HashMap`, `Vec<…` → `Vec`).
fn leading_type_ident(tokens: &[Token], mut i: usize) -> Option<&str> {
    loop {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct('&')) | Some(TokenKind::Lifetime) => i += 1,
            Some(TokenKind::Ident(s)) if s == "mut" || s == "dyn" => i += 1,
            _ => break,
        }
    }
    let mut last = ident_at(tokens, i)?;
    i += 1;
    while path_sep_at(tokens, i) {
        let next = ident_at(tokens, i + 2)?;
        last = next;
        i += 3;
    }
    Some(last)
}

/// Whether the expression starting at `i` is a `HashMap`/`HashSet`
/// constructor call (`HashMap::new()`, `std::collections::HashSet::with_capacity(…)`).
fn rhs_constructs_hash(tokens: &[Token], mut i: usize) -> bool {
    loop {
        match tokens.get(i).map(|t| &t.kind) {
            Some(TokenKind::Punct('&')) => i += 1,
            Some(TokenKind::Ident(s)) if s == "mut" => i += 1,
            _ => break,
        }
    }
    let mut saw_hash = false;
    while let Some(seg) = ident_at(tokens, i) {
        saw_hash |= HASH_TYPES.contains(&seg);
        // Step over optional turbofish generics between path segments.
        let mut j = i + 1;
        if punct_at(tokens, j, '<') {
            let mut depth = 0i32;
            while let Some(t) = tokens.get(j) {
                match t.kind {
                    TokenKind::Punct('<') => depth += 1,
                    TokenKind::Punct('>') => {
                        depth -= 1;
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    TokenKind::Punct(';') | TokenKind::Punct('{') => return saw_hash,
                    _ => {}
                }
                j += 1;
            }
        }
        if path_sep_at(tokens, j) {
            i = j + 2;
        } else {
            return saw_hash;
        }
    }
    saw_hash
}

/// A tracked binding: a name known (heuristically) to hold a
/// `HashMap`/`HashSet`, valid within a line range (whole file for ordinary
/// bindings; the impl block for `self` in `impl … for HashMap`).
struct Tracked {
    name: String,
    range: (u32, u32),
}

/// Collects hash-typed binding names: `let`/field/parameter declarations
/// with a `HashMap`/`HashSet` leading type, `let` initializers calling a
/// hash constructor, and `self` inside `impl … for HashMap/HashSet`.
fn tracked_hash_bindings(tokens: &[Token]) -> Vec<Tracked> {
    let mut tracked: Vec<Tracked> = Vec::new();
    let whole_file = (0u32, u32::MAX);
    let mut seen: BTreeSet<String> = BTreeSet::new();
    let track =
        |tracked: &mut Vec<Tracked>, seen: &mut BTreeSet<String>, name: &str, range: (u32, u32)| {
            if name != "_" && (range != whole_file || seen.insert(name.to_string())) {
                tracked.push(Tracked {
                    name: name.to_string(),
                    range,
                });
            }
        };

    for i in 0..tokens.len() {
        // `name: HashMap<…>` — let ascriptions, struct fields, fn params.
        if let Some(name) = ident_at(tokens, i) {
            if single_colon_at(tokens, i + 1) {
                if let Some(ty) = leading_type_ident(tokens, i + 2) {
                    if HASH_TYPES.contains(&ty) {
                        track(&mut tracked, &mut seen, name, whole_file);
                    }
                }
            }
        }
        // `let [mut] name = HashMap::new()` — constructor inference.
        if ident_at(tokens, i) == Some("let") {
            let mut j = i + 1;
            if ident_at(tokens, j) == Some("mut") {
                j += 1;
            }
            if let Some(name) = ident_at(tokens, j) {
                if punct_at(tokens, j + 1, '=')
                    && !punct_at(tokens, j + 2, '=')
                    && rhs_constructs_hash(tokens, j + 2)
                {
                    track(&mut tracked, &mut seen, name, whole_file);
                }
            }
        }
        // `impl … for HashMap<…> { … }` — `self` is hash-typed inside.
        if ident_at(tokens, i) == Some("impl") {
            let mut j = i + 1;
            let mut target = None;
            while let Some(t) = tokens.get(j) {
                match &t.kind {
                    TokenKind::Punct('{') | TokenKind::Punct(';') => break,
                    TokenKind::Ident(s) if s == "for" => {
                        target = leading_type_ident(tokens, j + 1);
                        break;
                    }
                    _ => {}
                }
                j += 1;
                if j > i + 120 {
                    break;
                }
            }
            if target.is_some_and(|t| HASH_TYPES.contains(&t)) {
                // Find the impl block's brace extent.
                let mut k = j;
                while k < tokens.len() && !punct_at(tokens, k, '{') {
                    k += 1;
                }
                let start_line = tokens.get(k).map_or(0, |t| t.line);
                let mut depth = 0i32;
                let mut end_line = u32::MAX;
                while let Some(t) = tokens.get(k) {
                    match t.kind {
                        TokenKind::Punct('{') => depth += 1,
                        TokenKind::Punct('}') => {
                            depth -= 1;
                            if depth == 0 {
                                end_line = t.line;
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                tracked.push(Tracked {
                    name: "self".to_string(),
                    range: (start_line, end_line),
                });
            }
        }
    }
    tracked
}

/// Scans forward from token `i` to the end of the statement (`;` at paren/
/// brace depth zero, capped), collecting identifiers.
fn statement_idents(tokens: &[Token], i: usize) -> Vec<&str> {
    let mut idents = Vec::new();
    let mut depth = 0i32;
    for t in tokens.iter().skip(i).take(400) {
        match &t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokenKind::Punct(';') if depth == 0 => break,
            TokenKind::Ident(s) => idents.push(s.as_str()),
            _ => {}
        }
    }
    idents
}

/// Index of the token after the statement containing token `i` ends (the
/// token following the `;` at depth zero), if within the cap.
fn statement_end(tokens: &[Token], i: usize) -> Option<usize> {
    let mut depth = 0i32;
    for (k, t) in tokens.iter().enumerate().skip(i).take(400) {
        match t.kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            TokenKind::Punct(';') if depth == 0 => return Some(k + 1),
            _ => {}
        }
    }
    None
}

/// Start-of-statement index for the statement containing token `i`: the
/// token after the previous `;`, `{` or `}`.
fn statement_start(tokens: &[Token], i: usize) -> usize {
    let mut k = i;
    while k > 0 {
        match tokens[k - 1].kind {
            TokenKind::Punct(';') | TokenKind::Punct('{') | TokenKind::Punct('}') => break,
            _ => k -= 1,
        }
    }
    k
}

/// The collect-then-sort pattern: the flagged chain is the initializer of
/// `let [mut] NAME = …;` and the very next statement starts `NAME.sort…`.
fn collect_then_sort(tokens: &[Token], flag_idx: usize) -> bool {
    let start = statement_start(tokens, flag_idx);
    let mut j = start;
    if ident_at(tokens, j) != Some("let") {
        return false;
    }
    j += 1;
    if ident_at(tokens, j) == Some("mut") {
        j += 1;
    }
    let Some(name) = ident_at(tokens, j) else {
        return false;
    };
    let Some(next) = statement_end(tokens, flag_idx) else {
        return false;
    };
    ident_at(tokens, next) == Some(name)
        && punct_at(tokens, next + 1, '.')
        && ident_at(tokens, next + 2).is_some_and(|m| m.starts_with("sort"))
}

/// Rules 1 and 4: unordered iteration and float reductions over it.
fn check_unordered_iteration(
    rel: &Path,
    ctx: &SourceContext,
    tokens: &[Token],
    test_ranges: &[(u32, u32)],
    findings: &mut Vec<Finding>,
) {
    let tracked = tracked_hash_bindings(tokens);
    let is_tracked = |name: &str, line: u32| {
        tracked
            .iter()
            .any(|t| t.name == name && t.range.0 <= line && line <= t.range.1)
    };
    let float_scope = ctx.is_crate("defines-core") || ctx.is_crate("defines-mapping");

    let flag = |findings: &mut Vec<Finding>, idx: usize, name: &str, what: &str| {
        let line = tokens[idx].line;
        let idents = statement_idents(tokens, idx);
        if idents.iter().any(|s| SORT_MARKERS.contains(s)) || collect_then_sort(tokens, idx) {
            return;
        }
        let reduces = idents.iter().any(|s| FLOAT_REDUCERS.contains(s));
        if reduces && float_scope {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::FloatOrder,
                message: format!(
                    "float reduction over unordered {what} of hash-typed binding `{name}` — \
                     f64 addition is order-sensitive, so the result bits depend on map order"
                ),
                hint: "collect and sort before reducing, use a BTreeMap/BTreeSet, or annotate \
                       with // lint:allow(float-order, <reason>)"
                    .into(),
            });
        } else {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::UnorderedIter,
                message: format!(
                    "{what} of hash-typed binding `{name}` leaks nondeterministic map order"
                ),
                hint: "iterate a sorted collection (BTreeMap/BTreeSet or collect-then-sort) \
                       or annotate with // lint:allow(unordered-iter, <reason>)"
                    .into(),
            });
        }
    };

    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if in_ranges(test_ranges, line) {
            continue;
        }
        // `binding.iter()` / `.keys()` / `.values()` / …
        if let Some(name) = ident_at(tokens, i) {
            if is_tracked(name, line)
                && punct_at(tokens, i + 1, '.')
                && ident_at(tokens, i + 2).is_some_and(|m| ITER_METHODS.contains(&m))
            {
                // `into_iter`/`iter` may be part of a turbofish-less call
                // chain; require the call parens (possibly after `::<…>`).
                let mut j = i + 3;
                if punct_at(tokens, j, ':') && punct_at(tokens, j + 1, ':') {
                    // Skip `::<T>` turbofish.
                    j += 2;
                    if punct_at(tokens, j, '<') {
                        let mut depth = 0i32;
                        while let Some(t) = tokens.get(j) {
                            match t.kind {
                                TokenKind::Punct('<') => depth += 1,
                                TokenKind::Punct('>') => {
                                    depth -= 1;
                                    if depth == 0 {
                                        j += 1;
                                        break;
                                    }
                                }
                                _ => {}
                            }
                            j += 1;
                        }
                    }
                }
                if punct_at(tokens, j, '(') {
                    let method = ident_at(tokens, i + 2).unwrap_or_default();
                    flag(findings, i, name, &format!("`.{method}()` iteration"));
                }
            }
        }
        // `for pat in [&mut] binding { … }`
        if ident_at(tokens, i) == Some("for") {
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut found_in = None;
            while let Some(t) = tokens.get(j) {
                match &t.kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                    TokenKind::Punct(')') | TokenKind::Punct(']') => depth -= 1,
                    TokenKind::Punct('{') | TokenKind::Punct(';') => break,
                    TokenKind::Ident(s) if s == "in" && depth == 0 => {
                        found_in = Some(j);
                        break;
                    }
                    _ => {}
                }
                j += 1;
                if j > i + 40 {
                    break;
                }
            }
            if let Some(mut j) = found_in {
                j += 1;
                while punct_at(tokens, j, '&') || ident_at(tokens, j) == Some("mut") {
                    j += 1;
                }
                if let Some(name) = ident_at(tokens, j) {
                    if is_tracked(name, line) && punct_at(tokens, j + 1, '{') {
                        flag(findings, j, name, "`for` loop iteration");
                    }
                }
            }
        }
    }
}

/// Rule 2: wall-clock reads outside the crates allowed to tell time.
fn check_wall_clock(
    rel: &Path,
    ctx: &SourceContext,
    tokens: &[Token],
    test_ranges: &[(u32, u32)],
    findings: &mut Vec<Finding>,
) {
    // Vendored stand-ins for external crates (criterion is a benchmarking
    // harness) and the two observability crates may read clocks; bench/test
    // targets may too.
    if ctx.in_vendor
        || ctx.is_test_path
        || ctx.is_crate("defines-telemetry")
        || ctx.is_crate("defines-bench")
    {
        return;
    }
    for i in 0..tokens.len() {
        let line = tokens[i].line;
        if in_ranges(test_ranges, line) {
            continue;
        }
        let hit = match ident_at(tokens, i) {
            Some("Instant") => path_sep_at(tokens, i + 1) && ident_at(tokens, i + 3) == Some("now"),
            Some("SystemTime") => true,
            _ => false,
        };
        if hit {
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::WallClock,
                message: format!(
                    "wall-clock read (`{}`) outside defines-telemetry / defines-bench — \
                     timing must never feed cost, search or engine results",
                    ident_at(tokens, i).unwrap_or_default()
                ),
                hint: "move the measurement into defines-telemetry spans or a bench target, \
                       or annotate with // lint:allow(wall-clock, <reason>)"
                    .into(),
            });
        }
    }
}

/// Rule 3 (comment half): every `unsafe` token preceded by `// SAFETY:`.
fn check_unsafe_comments(rel: &Path, lexed: &Lexed, findings: &mut Vec<Finding>) {
    for (i, t) in lexed.tokens.iter().enumerate() {
        if !matches!(&t.kind, TokenKind::Ident(s) if s == "unsafe") {
            continue;
        }
        let line = t.line;
        let covered = lexed.comments_on_line(line).contains("SAFETY:")
            || lexed
                .comment_block_ending_at(line.saturating_sub(1))
                .contains("SAFETY:");
        if !covered {
            let what = match ident_at(&lexed.tokens, i + 1) {
                Some("impl") => "unsafe impl",
                Some("fn") => "unsafe fn",
                _ => "unsafe block",
            };
            findings.push(Finding {
                file: rel.to_path_buf(),
                line,
                rule: Rule::UnsafeHygiene,
                message: format!("{what} without an immediately preceding `// SAFETY:` comment"),
                hint: "state the contract the site relies on in a // SAFETY: comment on the \
                       line(s) directly above"
                    .into(),
            });
        }
    }
}

/// Lints one Rust source file. `rel_path` must be workspace-relative — the
/// per-rule scoping (crate names, vendor/, test directories) is derived from
/// it, so fixtures can exercise any scope by choosing a virtual path.
pub fn lint_source(rel_path: &Path, source: &str) -> Vec<Finding> {
    let ctx = SourceContext::from_path(rel_path);
    let lexed = lex(source);
    let (allows, mut findings) = collect_allows(rel_path, &lexed);
    let test_ranges = test_line_ranges(&lexed.tokens);

    if !ctx.is_test_path {
        check_unordered_iteration(rel_path, &ctx, &lexed.tokens, &test_ranges, &mut findings);
    }
    check_wall_clock(rel_path, &ctx, &lexed.tokens, &test_ranges, &mut findings);
    check_unsafe_comments(rel_path, &lexed, &mut findings);

    findings.retain(|f| {
        f.rule == Rule::BadAllow
            || !allows
                .iter()
                .any(|a| a.rule == f.rule && a.covers.0 <= f.line && f.line <= a.covers.1)
    });
    findings.sort();
    findings
}

/// Checks a `crates/` crate-root file for the mandatory unsafe-code posture
/// attribute. Returns a finding if neither `#![forbid(unsafe_code)]` nor
/// `#![deny(unsafe_op_in_unsafe_fn)]` is present.
pub fn check_crate_root_attr(rel_path: &Path, source: &str) -> Option<Finding> {
    let lexed = lex(source);
    let tokens = &lexed.tokens;
    for i in 0..tokens.len() {
        let lint_name = match ident_at(tokens, i) {
            Some("forbid") => "unsafe_code",
            Some("deny") => "unsafe_op_in_unsafe_fn",
            _ => continue,
        };
        if punct_at(tokens, i + 1, '(') && ident_at(tokens, i + 2) == Some(lint_name) {
            return None;
        }
    }
    Some(Finding {
        file: rel_path.to_path_buf(),
        line: 1,
        rule: Rule::UnsafeHygiene,
        message: "crate root missing an unsafe-code posture attribute".into(),
        hint: "add #![forbid(unsafe_code)] (or #![deny(unsafe_op_in_unsafe_fn)] where unsafe \
               is load-bearing)"
            .into(),
    })
}
