//! `Cargo.toml` parsing (a line-oriented TOML subset) and the
//! offline-vendoring rule.
//!
//! The build environment has no crates.io access, so every dependency in
//! every manifest must resolve to a `vendor/` path or a workspace crate —
//! either directly (`path = "../../vendor/serde"`) or through
//! `workspace = true` against a root `[workspace.dependencies]` entry that
//! itself carries such a path. Anything else (bare versions, registry
//! entries, git URLs) would make `cargo` reach for the network.
//!
//! The parser covers the TOML subset the workspace actually uses: `[section]`
//! headers, `key = value` lines with string / bool / array / single-line
//! inline-table values, and dotted keys (`serde.workspace = true`). That is
//! deliberate — like the lexer, it is self-contained so the linter that
//! audits the dependency policy has no dependencies of its own.

use crate::rules::{Finding, Rule};
use std::collections::BTreeSet;
use std::path::{Component, Path, PathBuf};

/// One dependency entry as written in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DepSite {
    /// Section the entry appears in (`dependencies`, `dev-dependencies`,
    /// `build-dependencies`, `workspace.dependencies`, …).
    pub section: String,
    /// Dependency name (the key).
    pub name: String,
    /// 1-based line of the entry.
    pub line: u32,
    /// `path = "…"` value, if present.
    pub path: Option<String>,
    /// Whether `workspace = true` is set.
    pub workspace: bool,
    /// Whether a `version` requirement is present.
    pub has_version: bool,
    /// Whether a `git` source is present.
    pub git: bool,
}

/// Parses every dependency entry out of a manifest.
pub fn parse_dependencies(content: &str) -> Vec<DepSite> {
    let mut deps = Vec::new();
    let mut section = String::new();
    for (idx, raw) in content.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_toml_comment(raw).trim().to_string();
        if line.is_empty() {
            continue;
        }
        if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
            section = name.trim().trim_matches('[').trim_matches(']').to_string();
            continue;
        }
        if !is_dependency_section(&section) {
            continue;
        }
        let Some((key, value)) = split_key_value(&line) else {
            continue;
        };
        let (name, sub) = match key.split_once('.') {
            Some((n, s)) => (n.trim(), Some(s.trim())),
            None => (key.trim(), None),
        };
        let name = name.trim_matches('"').to_string();
        let mut dep = DepSite {
            section: section.clone(),
            name,
            line: line_no,
            path: None,
            workspace: false,
            has_version: false,
            git: false,
        };
        match sub {
            // `serde.workspace = true`, `serde.path = "…"` dotted forms.
            Some(attr) => apply_attr(&mut dep, attr, value.trim()),
            None => {
                let value = value.trim();
                if let Some(body) = value.strip_prefix('{').and_then(|v| v.strip_suffix('}')) {
                    for pair in split_inline_table(body) {
                        if let Some((k, v)) = split_key_value(&pair) {
                            apply_attr(&mut dep, k.trim(), v.trim());
                        }
                    }
                } else if value.starts_with('"') {
                    dep.has_version = true;
                }
            }
        }
        deps.push(dep);
    }
    deps
}

/// Whether a section holds dependency entries.
fn is_dependency_section(section: &str) -> bool {
    section == "dependencies"
        || section.ends_with(".dependencies")
        || section.ends_with("dev-dependencies")
        || section.ends_with("build-dependencies")
        || section == "dev-dependencies"
        || section == "build-dependencies"
}

fn apply_attr(dep: &mut DepSite, key: &str, value: &str) {
    match key {
        "path" => dep.path = Some(value.trim_matches('"').to_string()),
        "workspace" => dep.workspace = value == "true",
        "version" => dep.has_version = true,
        "git" => dep.git = true,
        _ => {}
    }
}

/// Removes a `#` comment that is outside any string.
fn strip_toml_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Splits `key = value` on the first `=` outside quotes.
fn split_key_value(line: &str) -> Option<(String, String)> {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '=' if !in_string => {
                return Some((
                    line[..i].trim().to_string(),
                    line[i + 1..].trim().to_string(),
                ));
            }
            _ => {}
        }
    }
    None
}

/// Splits an inline-table body on commas outside quotes and brackets.
fn split_inline_table(body: &str) -> Vec<String> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut in_string = false;
    let mut depth = 0i32;
    for c in body.chars() {
        match c {
            '"' => {
                in_string = !in_string;
                current.push(c);
            }
            '[' | '{' if !in_string => {
                depth += 1;
                current.push(c);
            }
            ']' | '}' if !in_string => {
                depth -= 1;
                current.push(c);
            }
            ',' if !in_string && depth == 0 => {
                parts.push(std::mem::take(&mut current));
            }
            _ => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    parts
}

/// Names declared in the root `[workspace.dependencies]` table. The entries
/// themselves are validated when the root manifest is linted; members only
/// need the name to exist.
#[derive(Debug, Default, Clone)]
pub struct WorkspaceDeps {
    names: BTreeSet<String>,
}

impl WorkspaceDeps {
    /// Builds the set from the root manifest's content.
    pub fn from_root_manifest(content: &str) -> WorkspaceDeps {
        let names = parse_dependencies(content)
            .into_iter()
            .filter(|d| d.section == "workspace.dependencies")
            .map(|d| d.name)
            .collect();
        WorkspaceDeps { names }
    }

    /// Whether `name` is declared in the root table.
    pub fn contains(&self, name: &str) -> bool {
        self.names.contains(name)
    }
}

/// Lexically normalizes `dir/path` (resolving `.` and `..`) without touching
/// the filesystem, returning a workspace-root-relative path. `None` if the
/// path escapes the root.
fn normalize_relative(dir: &Path, path: &str) -> Option<PathBuf> {
    let mut stack: Vec<std::ffi::OsString> = Vec::new();
    for comp in dir.join(path).components() {
        match comp {
            Component::CurDir => {}
            Component::ParentDir => {
                stack.pop()?;
            }
            Component::Normal(c) => stack.push(c.to_os_string()),
            Component::RootDir | Component::Prefix(_) => return None,
        }
    }
    Some(stack.iter().collect())
}

/// Rule 5: lints one manifest's dependency entries against the vendoring
/// policy. `rel_path` must be workspace-relative (path deps are resolved
/// against its parent directory).
pub fn lint_manifest(rel_path: &Path, content: &str, ws: &WorkspaceDeps) -> Vec<Finding> {
    let dir = rel_path.parent().unwrap_or(Path::new(""));
    let mut findings = Vec::new();
    let mut push = |line: u32, message: String, hint: &str| {
        findings.push(Finding {
            file: rel_path.to_path_buf(),
            line,
            rule: Rule::Vendoring,
            message,
            hint: hint.to_string(),
        });
    };
    for dep in parse_dependencies(content) {
        if dep.git {
            push(
                dep.line,
                format!(
                    "dependency `{}` uses a git source — the build is offline",
                    dep.name
                ),
                "vendor the crate under vendor/ and point a path dependency at it",
            );
            continue;
        }
        if let Some(p) = &dep.path {
            let resolved = normalize_relative(dir, p);
            let ok = resolved
                .as_ref()
                .is_some_and(|r| r.starts_with("vendor") || r.starts_with("crates"));
            if !ok {
                push(
                    dep.line,
                    format!(
                        "dependency `{}` path `{}` resolves outside vendor/ and crates/",
                        dep.name, p
                    ),
                    "point the path at vendor/<crate> or crates/<crate>",
                );
            }
            continue;
        }
        if dep.workspace {
            if dep.section == "workspace.dependencies" {
                // `workspace = true` is meaningless in the root table itself.
                push(
                    dep.line,
                    format!("workspace dependency `{}` has no path", dep.name),
                    "give the [workspace.dependencies] entry a vendor/ or crates/ path",
                );
            } else if !ws.contains(&dep.name) {
                push(
                    dep.line,
                    format!(
                        "dependency `{}` sets workspace = true but the root \
                         [workspace.dependencies] table has no such entry",
                        dep.name
                    ),
                    "declare the dependency with a vendor/ or crates/ path in the root manifest",
                );
            }
            continue;
        }
        // No path, no workspace indirection: this entry would resolve to a
        // registry, which the offline build cannot reach.
        push(
            dep.line,
            format!(
                "dependency `{}` resolves to a registry ({}) — the build is offline",
                dep.name,
                if dep.has_version {
                    "bare version requirement"
                } else {
                    "no source given"
                }
            ),
            "use path = \"…/vendor/<crate>\" or workspace = true backed by a vendored path",
        );
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_inline_tables_and_dotted_keys() {
        let content = r#"
[package]
name = "demo"

[dependencies]
serde = { path = "../../vendor/serde", features = ["derive"] }
clap.workspace = true
plain = "1.0"

[dev-dependencies]
proptest = { workspace = true }
"#;
        let deps = parse_dependencies(content);
        assert_eq!(deps.len(), 4);
        assert_eq!(deps[0].path.as_deref(), Some("../../vendor/serde"));
        assert!(deps[1].workspace);
        assert!(deps[2].has_version);
        assert!(deps[3].workspace);
        assert_eq!(deps[3].section, "dev-dependencies");
    }

    #[test]
    fn normalization_is_lexical() {
        let dir = Path::new("crates/demo");
        assert_eq!(
            normalize_relative(dir, "../../vendor/serde"),
            Some(PathBuf::from("vendor/serde"))
        );
        assert_eq!(normalize_relative(dir, "../../../outside"), None);
    }

    #[test]
    fn registry_and_git_deps_are_flagged() {
        let ws = WorkspaceDeps::default();
        let content =
            "[dependencies]\nbad = \"1.0\"\nworse = { git = \"https://example.com/x\" }\n";
        let findings = lint_manifest(Path::new("crates/demo/Cargo.toml"), content, &ws);
        assert_eq!(findings.len(), 2, "{findings:#?}");
        assert!(findings.iter().all(|f| f.rule == Rule::Vendoring));
    }

    #[test]
    fn workspace_comment_and_version_attrs() {
        let content = "[dependencies]\nserde = { path = \"../../vendor/serde\" } # ok\n";
        let ws = WorkspaceDeps::default();
        assert!(lint_manifest(Path::new("crates/demo/Cargo.toml"), content, &ws).is_empty());
    }
}
