//! Fixture: a crate root with no unsafe-code posture attribute.

pub fn missing_posture() {}
