// Fixture: the same iteration, made deterministic by sorting at the boundary.
use std::collections::HashMap;

pub fn names(m: &HashMap<u32, String>) -> Vec<String> {
    let mut out = m.values().cloned().collect::<Vec<_>>();
    out.sort();
    out
}

pub fn count(m: &HashMap<u32, String>) -> usize {
    // lint:allow(unordered-iter, counting is order-independent)
    m.keys().count()
}
