// Fixture: f64 reduction over an unordered iterator in a cost-model crate.
use std::collections::HashMap;

pub fn total_energy(m: &HashMap<u32, f64>) -> f64 {
    m.values().copied().sum()
}
