//! Fixture: a crate root that declares its unsafe-code posture.

#![forbid(unsafe_code)]

pub fn ok() {}
