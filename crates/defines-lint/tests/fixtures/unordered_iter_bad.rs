// Fixture: iterating a HashMap straight into output order.
use std::collections::HashMap;

pub fn names(m: &HashMap<u32, String>) -> Vec<String> {
    let mut out = Vec::new();
    for v in m.values() {
        out.push(v.clone());
    }
    out
}
