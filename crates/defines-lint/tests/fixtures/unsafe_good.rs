// Fixture: the same unsafe sites, each with its contract stated.
// SAFETY: caller must pass a pointer to a live, aligned u32.
pub unsafe fn read_first(ptr: *const u32) -> u32 {
    // SAFETY: the function contract above guarantees `ptr` is valid.
    unsafe { *ptr }
}

pub fn call(x: &u32) -> u32 {
    // SAFETY: `x` is a live reference, so the raw pointer derived from it
    // satisfies `read_first`'s contract for the duration of the call.
    unsafe { read_first(x as *const u32) }
}
