// Fixture: the same reduction, made order-stable by sorting first.
use std::collections::HashMap;

pub fn total_energy(m: &HashMap<u32, f64>) -> f64 {
    let mut vals = m.values().copied().collect::<Vec<f64>>();
    vals.sort_by(f64::total_cmp);
    vals.iter().sum()
}
