// Fixture: malformed lint:allow annotations.

// lint:allow(not-a-rule, suppressing something that does not exist)
pub fn unknown_rule() {}

// lint:allow(wall-clock)
pub fn missing_reason() {}
