// Fixture: wall-clock reads in an engine-path crate.
use std::time::{Instant, SystemTime};

pub fn elapsed_nanos() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}

pub fn seed() -> SystemTime {
    SystemTime::now()
}
