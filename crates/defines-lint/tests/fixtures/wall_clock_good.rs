// Fixture: a justified wall-clock read, annotated at the site.
use std::time::Instant;

pub fn elapsed_nanos() -> u128 {
    // lint:allow(wall-clock, fixture — elapsed feeds a human-facing log line only)
    let start = Instant::now();
    start.elapsed().as_nanos()
}
