// Fixture: unsafe sites with no SAFETY comments.
pub unsafe fn read_first(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}

pub fn call(x: &u32) -> u32 {
    unsafe { read_first(x as *const u32) }
}
