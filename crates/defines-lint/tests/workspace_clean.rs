//! The gating test: the real workspace tree must be lint-clean.
//!
//! This is the same check CI's `lint` job runs via the binary; having it as a
//! test too means a plain `cargo test` catches a regression even when the
//! lint job is skipped or edited.

use defines_lint::{find_workspace_root, lint_tree};
use std::path::Path;

#[test]
fn live_workspace_has_no_findings() {
    let root = find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("defines-lint must live inside the workspace");
    let findings = lint_tree(&root).expect("workspace walk");
    assert!(
        findings.is_empty(),
        "the workspace tree must lint clean; fix or annotate these sites:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// End-to-end walk over a synthetic mini-workspace with known violations:
/// exercises the walker + manifest pass + crate-root-attribute pass together,
/// which the per-file fixtures cannot.
#[test]
fn lint_tree_reports_violations_in_a_synthetic_workspace() {
    let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join("lint-mini-ws");
    let demo = root.join("crates/demo/src");
    std::fs::create_dir_all(&demo).expect("mkdir");
    std::fs::write(
        root.join("Cargo.toml"),
        "[workspace]\nmembers = [\"crates/demo\"]\n",
    )
    .expect("root manifest");
    std::fs::write(
        root.join("crates/demo/Cargo.toml"),
        "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n\n\
         [dependencies]\nrand = \"0.8\"\n",
    )
    .expect("demo manifest");
    std::fs::write(
        demo.join("lib.rs"),
        "pub fn stamp() -> u128 {\n    \
             std::time::SystemTime::now()\n        \
             .duration_since(std::time::UNIX_EPOCH)\n        \
             .map(|d| d.as_nanos())\n        \
             .unwrap_or(0)\n}\n",
    )
    .expect("demo lib");

    let findings = lint_tree(&root).expect("walk");
    let rendered = findings
        .iter()
        .map(|f| f.to_string())
        .collect::<Vec<_>>()
        .join("\n");
    // One registry dep, one missing posture attribute, one wall-clock read.
    assert_eq!(findings.len(), 3, "{rendered}");
    assert!(rendered.contains("[vendoring]"), "{rendered}");
    assert!(rendered.contains("[unsafe-hygiene]"), "{rendered}");
    assert!(rendered.contains("[wall-clock]"), "{rendered}");
    // Findings are workspace-relative and deterministically ordered.
    assert!(
        rendered.starts_with("crates/demo/Cargo.toml:6:"),
        "{rendered}"
    );
}
