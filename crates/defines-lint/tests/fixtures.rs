//! Fixture corpus for every lint rule: one passing and one failing fixture
//! per rule, checked through the same entry points the binary uses.
//!
//! The fixture files live under `tests/fixtures/`, which the workspace walker
//! deliberately skips — the failing fixtures would otherwise make the real
//! tree lint-dirty. The tests therefore feed each fixture to [`lint_source`]
//! under a *virtual* workspace path, chosen so the rule under test is in
//! scope (e.g. `crates/defines-core/...` for float-order, a non-test path for
//! unordered-iter).

use defines_lint::{check_crate_root_attr, lint_manifest, lint_source, Rule, WorkspaceDeps};
use std::path::Path;

/// A plain library path where the determinism and hygiene rules apply.
const LIB_PATH: &str = "crates/demo/src/lib.rs";
/// A cost-model path where float reductions escalate to `float-order`.
const CORE_PATH: &str = "crates/defines-core/src/fixture.rs";

fn rules_of(findings: &[defines_lint::Finding]) -> Vec<Rule> {
    findings.iter().map(|f| f.rule).collect()
}

fn lines_of(findings: &[defines_lint::Finding]) -> Vec<u32> {
    findings.iter().map(|f| f.line).collect()
}

#[test]
fn unordered_iter_bad_fixture_is_flagged() {
    let findings = lint_source(
        Path::new(LIB_PATH),
        include_str!("fixtures/unordered_iter_bad.rs"),
    );
    assert_eq!(
        rules_of(&findings),
        vec![Rule::UnorderedIter],
        "{findings:?}"
    );
    assert_eq!(lines_of(&findings), vec![6]);
}

#[test]
fn unordered_iter_good_fixture_is_clean() {
    let findings = lint_source(
        Path::new(LIB_PATH),
        include_str!("fixtures/unordered_iter_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn wall_clock_bad_fixture_is_flagged() {
    let findings = lint_source(
        Path::new(LIB_PATH),
        include_str!("fixtures/wall_clock_bad.rs"),
    );
    assert!(
        findings.iter().all(|f| f.rule == Rule::WallClock),
        "{findings:?}"
    );
    // The `use` line, `Instant::now`, the `SystemTime` return type, and
    // `SystemTime::now` — strict containment flags the type by name.
    assert_eq!(lines_of(&findings), vec![2, 5, 9, 10], "{findings:?}");
}

#[test]
fn wall_clock_good_fixture_is_clean() {
    let findings = lint_source(
        Path::new(LIB_PATH),
        include_str!("fixtures/wall_clock_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn wall_clock_is_in_scope_only_outside_telemetry_and_bench() {
    let src = include_str!("fixtures/wall_clock_bad.rs");
    for exempt in [
        "crates/defines-telemetry/src/fixture.rs",
        "crates/defines-bench/src/fixture.rs",
        "crates/demo/tests/fixture.rs",
        "vendor/criterion/src/fixture.rs",
    ] {
        let findings = lint_source(Path::new(exempt), src);
        assert!(findings.is_empty(), "{exempt}: {findings:?}");
    }
}

#[test]
fn unsafe_bad_fixture_is_flagged() {
    let findings = lint_source(Path::new(LIB_PATH), include_str!("fixtures/unsafe_bad.rs"));
    assert_eq!(
        rules_of(&findings),
        vec![Rule::UnsafeHygiene; 3],
        "{findings:?}"
    );
    assert_eq!(lines_of(&findings), vec![2, 3, 7]);
}

#[test]
fn unsafe_good_fixture_is_clean() {
    let findings = lint_source(Path::new(LIB_PATH), include_str!("fixtures/unsafe_good.rs"));
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn float_order_bad_fixture_is_flagged() {
    let findings = lint_source(
        Path::new(CORE_PATH),
        include_str!("fixtures/float_order_bad.rs"),
    );
    assert_eq!(rules_of(&findings), vec![Rule::FloatOrder], "{findings:?}");
    assert_eq!(lines_of(&findings), vec![5]);
}

#[test]
fn float_order_good_fixture_is_clean() {
    let findings = lint_source(
        Path::new(CORE_PATH),
        include_str!("fixtures/float_order_good.rs"),
    );
    assert!(findings.is_empty(), "{findings:?}");
}

#[test]
fn float_order_demotes_to_unordered_iter_outside_cost_crates() {
    // The same reduction in a non-cost crate is still unordered iteration,
    // just not the stricter float-order finding.
    let findings = lint_source(
        Path::new(LIB_PATH),
        include_str!("fixtures/float_order_bad.rs"),
    );
    assert_eq!(
        rules_of(&findings),
        vec![Rule::UnorderedIter],
        "{findings:?}"
    );
}

#[test]
fn bad_allow_fixture_is_flagged() {
    let findings = lint_source(Path::new(LIB_PATH), include_str!("fixtures/bad_allow.rs"));
    assert_eq!(
        rules_of(&findings),
        vec![Rule::BadAllow, Rule::BadAllow],
        "{findings:?}"
    );
    assert_eq!(lines_of(&findings), vec![3, 6]);
}

#[test]
fn crate_root_good_fixture_is_clean() {
    let finding = check_crate_root_attr(
        Path::new(LIB_PATH),
        include_str!("fixtures/crate_root_good.rs"),
    );
    assert!(finding.is_none(), "{finding:?}");
}

#[test]
fn crate_root_bad_fixture_is_flagged() {
    let finding = check_crate_root_attr(
        Path::new(LIB_PATH),
        include_str!("fixtures/crate_root_bad.rs"),
    )
    .expect("missing posture attribute must be flagged");
    assert_eq!(finding.rule, Rule::UnsafeHygiene);
    assert_eq!(finding.line, 1);
}

/// Root-manifest stand-in for the vendoring fixtures: one known workspace
/// dependency, resolved into vendor/.
const ROOT_MANIFEST: &str = r#"
[workspace]
members = ["crates/demo"]

[workspace.dependencies]
serde = { path = "vendor/serde" }
"#;

#[test]
fn vendoring_bad_fixture_is_flagged() {
    let ws = WorkspaceDeps::from_root_manifest(ROOT_MANIFEST);
    let findings = lint_manifest(
        Path::new("crates/demo/Cargo.toml"),
        include_str!("fixtures/vendoring_bad.toml"),
        &ws,
    );
    // rand (registry version), leftpad (git), outside (path escapes the
    // workspace), ghost (workspace = true with no root entry).
    assert_eq!(
        rules_of(&findings),
        vec![Rule::Vendoring; 4],
        "{findings:?}"
    );
    assert_eq!(lines_of(&findings), vec![7, 8, 9, 10]);
}

#[test]
fn vendoring_good_fixture_is_clean() {
    let ws = WorkspaceDeps::from_root_manifest(ROOT_MANIFEST);
    let findings = lint_manifest(
        Path::new("crates/demo/Cargo.toml"),
        include_str!("fixtures/vendoring_good.toml"),
        &ws,
    );
    assert!(findings.is_empty(), "{findings:?}");
}
