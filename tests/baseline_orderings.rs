//! Integration tests for the canonical orderings between scheduling baselines
//! across architectures and workloads (the relationships the paper's case
//! studies rely on).

use defines_arch::zoo;
use defines_core::{DfCostModel, DfStrategy, Explorer, OptimizeTarget, OverlapMode};
use defines_workload::models;

/// Layer-by-layer is never worse than single-layer: it is the same schedule
/// except that feature maps may stay in lower memory levels.
#[test]
fn lbl_never_worse_than_sl() {
    for acc in [
        zoo::meta_proto_like_df(),
        zoo::tpu_like(),
        zoo::tesla_npu_like_df(),
    ] {
        let model = DfCostModel::new(&acc).with_fast_mapper();
        for net in [models::fsrcnn(), models::mobilenet_v1()] {
            let sl = model
                .evaluate_network(&net, &DfStrategy::single_layer())
                .unwrap();
            let lbl = model
                .evaluate_network(&net, &DfStrategy::layer_by_layer())
                .unwrap();
            assert!(
                lbl.energy_pj <= sl.energy_pj * 1.001,
                "{} on {}: LBL {} vs SL {}",
                net.name(),
                acc.name(),
                lbl.energy_pj,
                sl.energy_pj
            );
        }
    }
}

/// The best depth-first strategy found by the explorer beats layer-by-layer on
/// DF-friendly hardware for an activation-dominant workload.
#[test]
fn best_df_beats_lbl_on_df_friendly_hardware() {
    let tiles = [(16, 18), (60, 72), (120, 135)];
    for acc in zoo::df_architectures() {
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model);
        let net = models::fsrcnn();
        let lbl = model
            .evaluate_network(&net, &DfStrategy::layer_by_layer())
            .unwrap();
        let best = explorer
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        assert!(
            best.cost.energy_pj < lbl.energy_pj,
            "{}: best DF {} vs LBL {}",
            acc.name(),
            best.cost.energy_pj,
            lbl.energy_pj
        );
    }
}

/// DF-friendly variants are better than (or close to) their baselines when
/// both use their best depth-first schedule — the overall conclusion of case
/// study 3.
#[test]
fn df_variants_do_not_regress_under_df_scheduling() {
    let tiles = [(60, 72), (120, 135)];
    let net = models::fsrcnn();
    for (baseline, variant) in zoo::baseline_architectures()
        .into_iter()
        .zip(zoo::df_architectures())
    {
        let base_model = DfCostModel::new(&baseline).with_fast_mapper();
        let var_model = DfCostModel::new(&variant).with_fast_mapper();
        let base_best = Explorer::new(&base_model)
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        let var_best = Explorer::new(&var_model)
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        assert!(
            var_best.cost.energy_pj <= base_best.cost.energy_pj * 1.15,
            "{} vs {}: {} vs {}",
            variant.name(),
            baseline.name(),
            var_best.cost.energy_pj,
            base_best.cost.energy_pj
        );
    }
}

/// Optimizing for energy and for EDP give consistent Pareto behaviour: the
/// EDP-optimal point never has both higher energy and higher latency than the
/// energy-optimal point.
#[test]
fn edp_target_is_consistent() {
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let explorer = Explorer::new(&model);
    let net = models::fsrcnn();
    let tiles = [(4, 4), (16, 18), (60, 72), (240, 270)];
    let energy_best = explorer
        .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
        .unwrap();
    let edp_best = explorer
        .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Edp)
        .unwrap();
    assert!(edp_best.cost.edp() <= energy_best.cost.edp() * 1.001);
    assert!(
        !(edp_best.cost.energy_pj > energy_best.cost.energy_pj * 1.001
            && edp_best.cost.latency_cycles > energy_best.cost.latency_cycles * 1.001),
        "EDP optimum dominated by the energy optimum"
    );
}
