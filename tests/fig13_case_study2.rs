//! Integration tests for the declarative accelerator frontend and the
//! case-study matrix runner (DeFiNES §V case study 2, Fig. 13–16): the
//! reference files under `accelerators/` load back into the exact zoo
//! architectures with bit-identical fingerprints, file-loaded accelerators
//! cost bit-identically to their built-in twins (sharing the mapping cache),
//! and the matrix runner names every `(accelerator, workload, fuse policy)`
//! cell of one shared-cache engine run.

use defines_arch::{loader, schema, zoo, Accelerator};
use defines_core::matrix::{run_matrix, MatrixConfig};
use defines_core::{
    DfCostModel, DfStrategy, Explorer, FusePolicy, OptimizeTarget, OverlapMode, TileSize,
};
use defines_mapping::MappingCache;
use defines_workload::models;
use std::path::PathBuf;

/// Absolute path of a reference file under the repository-root
/// `accelerators/`.
fn accelerator_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../accelerators")
        .join(file)
}

/// The reference files and the zoo constructors they must reproduce, in
/// `--accelerator` name order.
fn reference_files() -> [(&'static str, Accelerator); 11] {
    [
        ("meta-proto.json", zoo::meta_proto_like()),
        ("meta-proto-df.json", zoo::meta_proto_like_df()),
        ("tpu.json", zoo::tpu_like()),
        ("tpu-df.json", zoo::tpu_like_df()),
        ("edge-tpu.json", zoo::edge_tpu_like()),
        ("edge-tpu-df.json", zoo::edge_tpu_like_df()),
        ("ascend.json", zoo::ascend_like()),
        ("ascend-df.json", zoo::ascend_like_df()),
        ("tesla-npu.json", zoo::tesla_npu_like()),
        ("tesla-npu-df.json", zoo::tesla_npu_like_df()),
        ("depfin.json", zoo::depfin_like()),
    ]
}

#[test]
fn reference_files_match_zoo_architectures_exactly() {
    for (file, expected) in reference_files() {
        let loaded = loader::from_json_file(accelerator_path(file))
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(loaded, expected, "{file} must load the zoo architecture");
        assert_eq!(
            loaded.fingerprint(),
            expected.fingerprint(),
            "{file} must reproduce the zoo fingerprint bit for bit"
        );
    }
}

#[test]
fn reference_files_are_regenerable() {
    // The checked-in files are exactly what `export-accelerators` would
    // write today: export each zoo architecture and compare against the file
    // on disk.
    for (file, acc) in reference_files() {
        let exported = schema::to_json_pretty(&acc).unwrap() + "\n";
        let on_disk = std::fs::read_to_string(accelerator_path(file)).unwrap();
        assert_eq!(
            on_disk, exported,
            "{file} is stale: re-run `cargo run --release --bin export-accelerators`"
        );
    }
}

#[test]
fn every_zoo_accelerator_round_trips_with_identical_fingerprint() {
    // Beyond the checked-in files: the in-memory export/load round trip is
    // exact for the whole zoo, including the infinite register bandwidths
    // that JSON cannot represent directly (they travel as null).
    for (_, acc) in reference_files() {
        let json = schema::to_json_pretty(&acc).unwrap();
        let reloaded = loader::from_json_str(&json).unwrap();
        assert_eq!(reloaded, acc, "{}", acc.name());
        assert_eq!(reloaded.fingerprint(), acc.fingerprint(), "{}", acc.name());
    }
}

#[test]
fn file_loaded_accelerator_sweeps_bit_identical_to_builtin() {
    // The acceptance gate of the frontend: an FSRCNN sweep on the
    // file-loaded Meta-prototype-like DF architecture produces records
    // bit-identical to the builtin zoo constructor's.
    let builtin = zoo::meta_proto_like_df();
    let loaded = loader::from_json_file(accelerator_path("meta-proto-df.json")).unwrap();
    let net = models::fsrcnn();
    let tiles = [(4, 4), (60, 72), (960, 540)];

    let model_a = DfCostModel::new(&builtin).with_fast_mapper();
    let model_b = DfCostModel::new(&loaded).with_fast_mapper();
    let sweep_a = Explorer::new(&model_a)
        .sweep(&net, &tiles, &OverlapMode::ALL)
        .unwrap();
    let sweep_b = Explorer::new(&model_b)
        .sweep(&net, &tiles, &OverlapMode::ALL)
        .unwrap();
    assert_eq!(sweep_a, sweep_b, "all design points must cost identically");

    let best_a = Explorer::new(&model_a)
        .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
        .unwrap();
    let best_b = Explorer::new(&model_b)
        .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
        .unwrap();
    assert_eq!(best_a, best_b);
}

#[test]
fn mapping_cache_is_shared_across_file_loaded_and_builtin_accelerators() {
    // The memo key fingerprints the accelerator — not its provenance — so a
    // file-loaded twin re-uses every mapping the builtin evaluation
    // produced, while a *different* architecture does not.
    let builtin = zoo::meta_proto_like_df();
    let loaded = loader::from_json_file(accelerator_path("meta-proto-df.json")).unwrap();
    let other = zoo::tpu_like_df();
    let net = models::fsrcnn();
    let cache = MappingCache::new();
    let strategy = DfStrategy::depth_first(TileSize::new(60, 72), OverlapMode::FullyCached);

    let model_builtin = DfCostModel::new(&builtin)
        .with_fast_mapper()
        .with_shared_cache(cache.clone());
    let cost_builtin = model_builtin.evaluate_network(&net, &strategy).unwrap();
    let misses_after_builtin = cache.stats().misses;
    assert!(misses_after_builtin > 0);

    let model_loaded = DfCostModel::new(&loaded)
        .with_fast_mapper()
        .with_shared_cache(cache.clone());
    let cost_loaded = model_loaded.evaluate_network(&net, &strategy).unwrap();
    assert_eq!(cost_builtin, cost_loaded);
    assert_eq!(
        cache.stats().misses,
        misses_after_builtin,
        "the file-loaded twin must be answered entirely from the shared cache"
    );

    // A different architecture keys a different sub-problem space: its
    // evaluation must add misses, not silently reuse foreign mappings.
    let model_other = DfCostModel::new(&other)
        .with_fast_mapper()
        .with_shared_cache(cache.clone());
    model_other.evaluate_network(&net, &strategy).unwrap();
    assert!(
        cache.stats().misses > misses_after_builtin,
        "a different fingerprint must not hit the twin's cache entries"
    );
}

#[test]
fn matrix_runs_the_case_study_grid_in_one_shared_cache_run() {
    // A small §V-case-study-2 grid: two DF architectures (one of them
    // file-loaded) × FSRCNN × two fuse policies, one flattened engine run.
    let accelerators = [
        zoo::meta_proto_like_df(),
        loader::from_json_file(accelerator_path("tpu-df.json")).unwrap(),
    ];
    let workloads = [models::fsrcnn()];
    let policies = [FusePolicy::Auto, FusePolicy::SingleLayerStacks];
    let config = MatrixConfig::default();
    let report = run_matrix(
        &accelerators,
        &workloads,
        &policies,
        Some(&[(60, 72), (960, 540)]),
        &OverlapMode::ALL,
        OptimizeTarget::Energy,
        &config,
        |_| {},
    )
    .unwrap();

    // One outer engine run, one point per cell.
    assert_eq!(report.stats.points, 4);
    assert_eq!(report.stats.evaluated, 4);
    assert_eq!(report.cells.len(), 4);

    // Every (accelerator, workload, policy) cell is named in the report.
    for acc in ["Meta-proto-like DF", "TPU-like DF"] {
        for policy in ["auto", "single"] {
            let cell = report
                .cell(acc, "FSRCNN", policy)
                .unwrap_or_else(|| panic!("missing cell {acc}/{policy}"));
            assert!(cell.energy_pj > 0.0);
            assert!(!cell.stacks.is_empty());
        }
    }
    let json = serde::Serialize::to_value(&report).to_json();
    for needle in [
        "\"accelerator\":\"Meta-proto-like DF\"",
        "\"accelerator\":\"TPU-like DF\"",
        "\"workload\":\"FSRCNN\"",
        "\"fuse\":\"auto\"",
        "\"fuse\":\"single\"",
    ] {
        assert!(json.contains(needle), "JSON report must contain {needle}");
    }

    // The shared cache served cells across policies of the same accelerator.
    let cache = report.stats.cache.as_ref().unwrap();
    assert!(cache.hits > 0);

    // The markdown report has a ranking row per accelerator.
    let md = report.to_markdown();
    for (rank, _) in report.ranking.iter().enumerate() {
        assert!(
            md.contains(&format!("| {} | ", rank + 1)),
            "ranking row {} missing:\n{md}",
            rank + 1
        );
    }
    for acc in ["Meta-proto-like DF", "TPU-like DF"] {
        assert!(md.contains(acc), "{md}");
    }

    // The auto policy can only match or beat single-layer stacks per
    // accelerator (its candidate set is a superset per stack choice on the
    // same grid for FSRCNN, whose auto partition is one full stack).
    for acc in ["Meta-proto-like DF", "TPU-like DF"] {
        let auto = report.cell(acc, "FSRCNN", "auto").unwrap();
        let single = report.cell(acc, "FSRCNN", "single").unwrap();
        assert!(
            auto.value <= single.value * 1.01,
            "{acc}: auto {} vs single {}",
            auto.value,
            single.value
        );
    }
}

#[test]
fn matrix_cells_match_standalone_schedule_searches() {
    // Each matrix cell must cost exactly what a standalone
    // `Explorer::best_schedule` of the same (accelerator, workload, policy)
    // finds — the flattening is an execution detail, not a semantic change.
    let acc = zoo::edge_tpu_like_df();
    let net = models::fsrcnn();
    let tiles = [(60, 72), (240, 270)];
    let policy = FusePolicy::Auto;

    let report = run_matrix(
        std::slice::from_ref(&acc),
        std::slice::from_ref(&net),
        std::slice::from_ref(&policy),
        Some(&tiles),
        &OverlapMode::ALL,
        OptimizeTarget::Energy,
        &MatrixConfig::default(),
        |_| {},
    )
    .unwrap();
    let cell = &report.cells[0];

    let model = DfCostModel::new(&acc).with_fast_mapper();
    let standalone = Explorer::new(&model)
        .best_schedule(
            &net,
            &tiles,
            &OverlapMode::ALL,
            OptimizeTarget::Energy,
            &policy,
        )
        .unwrap();
    assert_eq!(cell.energy_pj, standalone.cost.energy_pj);
    assert_eq!(cell.latency_cycles, standalone.cost.latency_cycles);
    assert_eq!(cell.stacks.len(), standalone.choices.len());
}
