//! Property-based integration tests spanning the workload, architecture,
//! mapping and core crates.

use defines_arch::{zoo, Operand};
use defines_core::backcalc::StackGeometry;
use defines_core::stack::Stack;
use defines_core::strategy::{OverlapMode, TileSize};
use defines_core::tiling::TileGrid;
use defines_core::{DfCostModel, DfStrategy};
use defines_mapping::{LomaMapper, MapperConfig, SingleLayerProblem, TemporalMapping};
use defines_workload::{Layer, LayerDims, Network, OpType};
use proptest::prelude::*;

fn arb_layer_dims() -> impl Strategy<Value = LayerDims> {
    (
        1u64..=64, // k
        1u64..=32, // c
        4u64..=96, // ox
        4u64..=96, // oy
        prop::sample::select(vec![1u64, 3, 5]),
        prop::sample::select(vec![1u64, 2]),
    )
        .prop_map(|(k, c, ox, oy, f, s)| {
            LayerDims::conv(k, c, ox, oy, f, f)
                .with_stride(s, s)
                .with_padding((f - 1) / 2, (f - 1) / 2)
        })
}

fn two_layer_net(d1: LayerDims, k2: u64, f2: u64) -> Network {
    let mut net = Network::new("prop");
    let a = net
        .add_layer(Layer::new("a", OpType::Conv, d1), &[])
        .unwrap();
    let d2 =
        LayerDims::conv(k2, d1.k, d1.ox, d1.oy, f2, f2).with_padding((f2 - 1) / 2, (f2 - 1) / 2);
    net.add_layer(Layer::new("b", OpType::Conv, d2), &[a])
        .unwrap();
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The single-layer cost model never reports negative or non-finite costs,
    /// and DRAM weight reads cover at least the weight footprint once.
    #[test]
    fn single_layer_cost_is_sane(dims in arb_layer_dims()) {
        let acc = zoo::meta_proto_like_df();
        let layer = Layer::new("l", OpType::Conv, dims);
        let problem = SingleLayerProblem::new(&acc, &layer);
        let cost = LomaMapper::new(MapperConfig::fast()).optimize(&problem);
        prop_assert!(cost.energy_pj.is_finite() && cost.energy_pj > 0.0);
        prop_assert!(cost.latency_cycles.is_finite() && cost.latency_cycles > 0.0);
        prop_assert!(cost.latency_cycles + 1e-9 >= cost.compute_cycles);
        let dram = acc.hierarchy().dram_id();
        let w = cost.accesses.get(dram, Operand::Weight);
        prop_assert!(w.reads_bytes + 1e-9 >= layer.weight_bytes() as f64);
    }

    /// Temporal-mapping refetch factors are at least one and data sizes are
    /// monotone in the allocation boundary.
    #[test]
    fn refetch_and_data_size_properties(dims in arb_layer_dims(), boundary in 0usize..8) {
        let acc = zoo::edge_tpu_like_df();
        let layer = Layer::new("l", OpType::Conv, dims);
        let problem = SingleLayerProblem::new(&acc, &layer);
        let mapping = TemporalMapping::from_order(&problem, &defines_workload::Dim::SPATIAL_AND_CHANNEL);
        for op in Operand::ALL {
            let rel = problem.relevant_dims(op);
            prop_assert!(mapping.refetch_factor(rel, boundary) >= 1.0);
        }
    }

    /// For any two-layer network and any tile size, the tile grid covers the
    /// output exactly and the fully-cached analysis never recomputes: the
    /// summed MACs equal the workload MACs.
    #[test]
    fn fully_cached_never_recomputes(
        d1 in arb_layer_dims(),
        k2 in 1u64..=32,
        f2 in prop::sample::select(vec![1u64, 3]),
        tx in 1u64..=32,
        ty in 1u64..=32,
    ) {
        let net = two_layer_net(d1, k2, f2);
        let stack = Stack::new(net.layer_ids().collect());
        let geo = StackGeometry::new(&net, &stack);
        let last = net.layers().last().unwrap();
        let grid = TileGrid::new(last.dims.ox, last.dims.oy, TileSize::new(tx, ty));
        let covered: u64 = grid.iter().map(|(_, _, r)| r.area()).sum();
        prop_assert_eq!(covered, last.dims.ox * last.dims.oy);

        let expected: u64 = net.layers().iter().map(|l| l.macs()).sum();
        let mut cached_total = 0u64;
        let mut recompute_total = 0u64;
        for (c, r, _) in grid.iter() {
            cached_total += geo.analyze_tile(OverlapMode::FullyCached, &grid, c, r).total_macs();
            recompute_total += geo.analyze_tile(OverlapMode::FullyRecompute, &grid, c, r).total_macs();
        }
        prop_assert_eq!(cached_total, expected);
        prop_assert!(recompute_total >= expected);
    }

    /// Input accounting is consistent for every tile and mode: fresh + cached
    /// parts always equal the total input bytes and never exceed the
    /// feature-map sizes involved.
    #[test]
    fn input_accounting_is_consistent(
        d1 in arb_layer_dims(),
        tx in 1u64..=24,
        ty in 1u64..=24,
        mode in prop::sample::select(OverlapMode::ALL.to_vec()),
    ) {
        let net = two_layer_net(d1, 16, 3);
        let stack = Stack::new(net.layer_ids().collect());
        let geo = StackGeometry::new(&net, &stack);
        let last = net.layers().last().unwrap();
        let grid = TileGrid::new(last.dims.ox, last.dims.oy, TileSize::new(tx, ty));
        for (c, r, _) in grid.iter().take(12) {
            let a = geo.analyze_tile(mode, &grid, c, r);
            for rec in &a.layers {
                prop_assert_eq!(
                    rec.input_bytes,
                    rec.fresh_input_bytes + rec.cached_h_input_bytes + rec.cached_v_input_bytes
                );
                prop_assert!(rec.external_input_bytes <= rec.fresh_input_bytes);
            }
        }
    }
}

/// Non-proptest cross-crate check: the depth-first model's energy equals the
/// sum of its per-stack energies, and per-stack energies equal the weighted
/// sum of their tile types.
#[test]
fn cost_additivity_across_levels_of_aggregation() {
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let net = defines_workload::models::mobilenet_v1();
    let cost = model
        .evaluate_network(
            &net,
            &DfStrategy::depth_first(TileSize::new(28, 28), OverlapMode::FullyCached),
        )
        .unwrap();
    let stack_sum: f64 = cost.stacks.iter().map(|s| s.energy_pj).sum();
    assert!((stack_sum - cost.energy_pj).abs() / cost.energy_pj < 1e-9);
    for stack in &cost.stacks {
        let type_sum: f64 = stack
            .tile_types
            .iter()
            .map(|t| t.energy_pj * t.count as f64)
            .sum();
        assert!((type_sum - stack.energy_pj).abs() / stack.energy_pj.max(1.0) < 1e-9);
    }
}
