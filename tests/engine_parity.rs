//! Engine parity: the parallel + memoized + pruned exploration engine must
//! produce results bit-identical to the sequential reference path, on real
//! paper workloads and on randomized synthetic networks, while actually
//! hitting its memoization cache.

use defines_arch::zoo;
use defines_core::{DfCostModel, Explorer, OptimizeTarget, OverlapMode};
use defines_engine::{EngineConfig, SweepEngine};
use defines_mapping::MappingCache;
use defines_workload::{models, Layer, LayerDims, Network, OpType};
use proptest::prelude::*;

fn synthetic_net(k1: u64, k2: u64, side: u64, f: u64) -> Network {
    let mut net = Network::new("synthetic");
    let a = net
        .add_layer(
            Layer::new("a", OpType::Conv, LayerDims::conv(k1, 3, side, side, f, f)),
            &[],
        )
        .unwrap();
    let inner = side - (f - 1);
    let _ = net
        .add_layer(
            Layer::new(
                "b",
                OpType::Conv,
                LayerDims::conv(k2, k1, inner, inner, f, f),
            ),
            &[a],
        )
        .unwrap();
    net
}

/// The engine sweep (multi-threaded, shared cache) is bit-identical to the
/// seed's sequential sweep on FSRCNN over a representative grid.
#[test]
fn fsrcnn_engine_sweep_is_bit_identical_to_sequential() {
    let acc = zoo::meta_proto_like_df();
    let net = models::fsrcnn();
    let tiles = [(1, 1), (16, 18), (60, 72), (960, 540)];

    let sequential_model = DfCostModel::new(&acc).with_fast_mapper();
    let sequential = Explorer::new(&sequential_model)
        .sweep_sequential(&net, &tiles, &OverlapMode::ALL)
        .unwrap();

    let shared = MappingCache::new();
    let engine_model = DfCostModel::new(&acc)
        .with_fast_mapper()
        .with_shared_cache(shared.clone());
    for threads in [1, 4] {
        let parallel = Explorer::new(&engine_model)
            .with_threads(threads)
            .sweep(&net, &tiles, &OverlapMode::ALL)
            .unwrap();
        assert_eq!(parallel, sequential, "threads = {threads}");
    }
}

/// The memoization cache must absorb the cross-design-point redundancy: a
/// second sweep over the same space reuses every single mapping sub-problem.
#[test]
fn mapping_cache_hit_rate_reflects_design_space_redundancy() {
    let acc = zoo::meta_proto_like_df();
    let net = models::fsrcnn();
    let tiles = [(16, 18), (60, 72), (240, 270)];
    let cache = MappingCache::new();
    let model = DfCostModel::new(&acc)
        .with_fast_mapper()
        .with_shared_cache(cache.clone());
    let explorer = Explorer::new(&model);

    let _ = explorer.sweep(&net, &tiles, &OverlapMode::ALL).unwrap();
    let first = cache.stats();
    assert!(
        first.hit_rate() > 0.5,
        "one sweep already repeats most sub-problems: {first:?}"
    );

    let _ = explorer.sweep(&net, &tiles, &OverlapMode::ALL).unwrap();
    let second = cache.stats();
    assert_eq!(
        second.misses, first.misses,
        "a repeated sweep must introduce no new mapping sub-problems"
    );
    assert!(second.hits > first.hits);
}

/// Best-strategy search with pruning returns exactly the exhaustive result.
#[test]
fn fsrcnn_pruned_best_equals_exhaustive_best() {
    let acc = zoo::meta_proto_like_df();
    let net = models::fsrcnn();
    let tiles = [(1, 1), (4, 4), (16, 18), (60, 72), (960, 540)];
    let model = DfCostModel::new(&acc).with_fast_mapper();
    for target in [
        OptimizeTarget::Energy,
        OptimizeTarget::Edp,
        OptimizeTarget::DramAccess,
    ] {
        let pruned = Explorer::new(&model)
            .with_pruning(true)
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, target)
            .unwrap();
        let exhaustive = Explorer::new(&model)
            .with_pruning(false)
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, target)
            .unwrap();
        assert_eq!(pruned, exhaustive, "target {target}");
    }
}

/// Best-combination search on the engine matches a per-stack sequential scan
/// on a weight-dominant workload (several stacks).
#[test]
fn mobilenet_best_combination_is_deterministic_across_thread_counts() {
    let acc = zoo::meta_proto_like_df();
    let net = models::mobilenet_v1();
    let tiles = [(28, 28), (112, 112)];
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let single = Explorer::new(&model)
        .with_threads(1)
        .best_combination(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
        .unwrap();
    let parallel = Explorer::new(&model)
        .with_threads(4)
        .best_combination(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
        .unwrap();
    assert_eq!(single, parallel);
    assert!(
        single.per_stack.len() > 1,
        "MobileNetV1 should split into several stacks"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Property: for random two-layer networks, random tile grids and any
    /// thread count, the engine sweep equals the sequential sweep
    /// bit-for-bit, and the pruned best equals the exhaustive best.
    #[test]
    fn randomized_networks_preserve_parity(
        k1 in 4u64..=24,
        k2 in 4u64..=24,
        side in 24u64..=72,
        f in prop::sample::select(vec![1u64, 3]),
        tx in 1u64..=24,
        ty in 1u64..=24,
        threads in 1usize..=4,
    ) {
        let acc = zoo::meta_proto_like_df();
        let net = synthetic_net(k1, k2, side, f);
        let last = net.layers().last().unwrap();
        let tiles = [
            (tx.min(last.dims.ox), ty.min(last.dims.oy)),
            (last.dims.ox, last.dims.oy),
        ];
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let explorer = Explorer::new(&model).with_threads(threads);
        let sequential = explorer.sweep_sequential(&net, &tiles, &OverlapMode::ALL).unwrap();
        let parallel = explorer.sweep(&net, &tiles, &OverlapMode::ALL).unwrap();
        prop_assert_eq!(&parallel, &sequential);

        let pruned = explorer
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        let exhaustive = explorer
            .with_pruning(false)
            .best_single_strategy(&net, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
            .unwrap();
        prop_assert_eq!(pruned, exhaustive);
    }
}

/// The generic engine itself: evaluation counts, ordering and best-record
/// selection behave identically across thread counts on a cheap space.
#[test]
fn generic_engine_thread_count_invariance() {
    let points: Vec<u64> = (0..64).collect();
    let eval = |p: &u64| ((*p as f64) - 20.5).abs();
    let value = |_: &u64, c: &f64| *c;
    let mut reference: Option<Vec<Option<f64>>> = None;
    for threads in [1, 2, 8] {
        let engine = SweepEngine::new(
            EngineConfig::parallel()
                .with_threads(threads)
                .with_pruning(false),
        );
        let (records, stats) = engine.run_collect(&points, &eval, &value, None::<&fn(&u64) -> f64>);
        assert_eq!(stats.evaluated, 64);
        let values: Vec<Option<f64>> = records.iter().map(|r| r.value()).collect();
        match &reference {
            None => reference = Some(values),
            Some(expected) => assert_eq!(&values, expected, "threads = {threads}"),
        }
        assert_eq!(SweepEngine::best_record(records).unwrap().point, 20);
    }
}
