//! Thread-count determinism and cache-contention integration tests for the
//! parallel branch-and-bound mapping search.
//!
//! The contract under test: `--search-threads` is a *throughput* knob, never
//! a *results* knob. A full FSRCNN sweep and a matrix run must produce
//! byte-identical serialized reports at 1, 4 and 8 search threads, and the
//! shared [`MappingCache`] must stay consistent when hammered from many
//! threads resolving the same canonical problems.

use defines_arch::zoo;
use defines_core::matrix::{run_matrix, MatrixConfig};
use defines_core::{DfCostModel, Explorer, FusePolicy, OptimizeTarget, OverlapMode};
use defines_mapping::{LomaMapper, MapperConfig, MappingCache, SingleLayerProblem};
use defines_workload::{models, Layer, LayerDims, OpType};
use serde::{Serialize, Value};

/// Serializes a full FSRCNN sweep (every tile x overlap-mode design point)
/// run at the given mapping-search thread count. The records carry every
/// cost scalar, so byte equality of the JSON is bit equality of the results.
fn sweep_report_json(search_threads: usize) -> String {
    let acc = zoo::meta_proto_like_df();
    let net = models::fsrcnn();
    // The full-width mapper: 720-ordering searches engage the parallel path
    // (the fast sampled mapper would too, but with less subtree fan-out).
    let model = DfCostModel::new(&acc).with_search_threads(search_threads);
    let results = Explorer::new(&model)
        .sweep(&net, &[(60, 72), (32, 36), (960, 540)], &OverlapMode::ALL)
        .expect("sweep");
    Serialize::to_value(&results).to_json_pretty()
}

#[test]
fn sweep_report_is_byte_identical_at_every_thread_count() {
    let reference = sweep_report_json(1);
    for threads in [4usize, 8] {
        let report = sweep_report_json(threads);
        assert_eq!(
            report, reference,
            "sweep JSON diverged at {threads} search threads"
        );
    }
}

/// Serializes the deterministic portion of a 2x2 matrix run (cells and
/// ranking; the engine stats carry wall-clock times and are excluded) at the
/// given mapping-search thread count.
fn matrix_report_json(search_threads: usize) -> String {
    let accelerators = [zoo::meta_proto_like_df(), zoo::edge_tpu_like_df()];
    let workloads = [models::fsrcnn(), models::reference_net()];
    let policies = [FusePolicy::Auto];
    let config = MatrixConfig {
        search_threads,
        // A fresh cache per run: warm entries would mask search divergence.
        cache: MappingCache::new(),
        ..MatrixConfig::default()
    };
    let report = run_matrix(
        &accelerators,
        &workloads,
        &policies,
        None,
        &OverlapMode::ALL,
        OptimizeTarget::Energy,
        &config,
        |_| {},
    )
    .expect("matrix run");

    let cells: Vec<Value> = report
        .cells
        .iter()
        .map(|cell| {
            let stacks: Vec<Value> = cell
                .stacks
                .iter()
                .map(|s| {
                    Value::Object(vec![
                        ("tile".into(), Value::Str(s.tile.clone())),
                        ("mode".into(), Value::Str(s.mode.clone())),
                        ("value".into(), Value::F64(s.value)),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("label".into(), Value::Str(cell.label.clone())),
                ("value".into(), Value::F64(cell.value)),
                ("energy_pj".into(), Value::F64(cell.energy_pj)),
                ("latency_cycles".into(), Value::F64(cell.latency_cycles)),
                ("stacks".into(), Value::Array(stacks)),
            ])
        })
        .collect();
    let ranking: Vec<Value> = report
        .ranking
        .iter()
        .map(|entry| {
            Value::Object(vec![
                ("rank".into(), Value::U64(entry.rank as u64)),
                ("accelerator".into(), Value::Str(entry.accelerator.clone())),
                ("total_value".into(), Value::F64(entry.total_value)),
                ("ratio_to_best".into(), Value::F64(entry.ratio_to_best)),
            ])
        })
        .collect();
    Value::Object(vec![
        ("cells".into(), Value::Array(cells)),
        ("ranking".into(), Value::Array(ranking)),
    ])
    .to_json_pretty()
}

#[test]
fn matrix_report_is_byte_identical_at_every_thread_count() {
    let reference = matrix_report_json(1);
    for threads in [4usize, 8] {
        let report = matrix_report_json(threads);
        assert_eq!(
            report, reference,
            "matrix JSON diverged at {threads} search threads"
        );
    }
}

/// N threads hammering the same canonical problems through one shared
/// [`MappingCache`]: no duplicate entries, every returned cost identical,
/// and the hit/miss/canonical counters account for exactly every lookup.
#[test]
fn mapping_cache_stays_consistent_under_contention() {
    let acc = zoo::meta_proto_like_df();
    // Two canonical problems, each reachable from two raw variants: the
    // padded layers canonicalize onto their pad-free twins (weight-less ops
    // are canonicalized by the cache key, convs by padding removal).
    let variants = [
        Layer::new("a", OpType::Conv, LayerDims::conv(32, 16, 28, 28, 3, 3)),
        Layer::new(
            "a_pad",
            OpType::Conv,
            LayerDims::conv(32, 16, 28, 28, 3, 3).with_padding(1, 1),
        ),
        Layer::new("b", OpType::Pooling, LayerDims::conv(64, 64, 14, 14, 2, 2)),
        Layer::new(
            "b_pad",
            OpType::Pooling,
            LayerDims::conv(64, 64, 14, 14, 2, 2).with_padding(1, 1),
        ),
    ];
    let cache = MappingCache::new();
    let mapper = LomaMapper::new(MapperConfig::fast());

    // The single-threaded reference answers, computed on a private cache.
    let reference: Vec<_> = variants
        .iter()
        .map(|layer| {
            MappingCache::new().optimize_shared(&mapper, &SingleLayerProblem::new(&acc, layer))
        })
        .collect();

    const THREADS: usize = 8;
    const ROUNDS: usize = 16;
    std::thread::scope(|scope| {
        for _ in 0..THREADS {
            scope.spawn(|| {
                for _ in 0..ROUNDS {
                    for (layer, expected) in variants.iter().zip(&reference) {
                        let got =
                            cache.optimize_shared(&mapper, &SingleLayerProblem::new(&acc, layer));
                        assert_eq!(&*got, &**expected, "contended lookup diverged");
                    }
                }
            });
        }
    });

    let stats = cache.stats();
    let lookups = (THREADS * ROUNDS * variants.len()) as u64;
    assert_eq!(
        stats.hits + stats.misses,
        lookups,
        "every lookup must count as exactly one hit or one miss"
    );
    // The four raw variants collapse onto two canonical entries; the racy
    // first round may compute a canonical problem more than once, but the
    // first insert wins, so no duplicate entries ever materialize.
    assert_eq!(stats.entries, 2, "duplicate cache entries under contention");
    assert!(
        stats.misses >= 2,
        "each canonical problem misses at least once"
    );
    assert!(
        stats.misses <= (THREADS * variants.len()) as u64,
        "misses are bounded by the racy first round: {stats:?}"
    );
    assert!(
        stats.canonical_hits > 0 && stats.canonical_hits <= stats.hits,
        "padded variants must hit through canonicalization: {stats:?}"
    );

    // The cache holds one strong handle per entry; every reader got its own
    // clone, all of which have been dropped again.
    let arcs: Vec<_> = variants
        .iter()
        .map(|layer| cache.optimize_shared(&mapper, &SingleLayerProblem::new(&acc, layer)))
        .collect();
    assert_eq!(
        std::sync::Arc::strong_count(&arcs[0]),
        3,
        "cache + 2 clones"
    );
    assert!(std::sync::Arc::ptr_eq(&arcs[0], &arcs[1]));
    assert!(std::sync::Arc::ptr_eq(&arcs[2], &arcs[3]));
}
