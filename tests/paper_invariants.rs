//! Integration tests asserting the qualitative shapes the paper's evaluation
//! reports (the reproduction targets listed in DESIGN.md §4).

use defines_arch::zoo;
use defines_core::{DfCostModel, DfStrategy, OverlapMode, TileSize};
use defines_workload::models;

fn fsrcnn_energy(model: &DfCostModel<'_>, tx: u64, ty: u64, mode: OverlapMode) -> f64 {
    model
        .evaluate_network(
            &models::fsrcnn(),
            &DfStrategy::depth_first(TileSize::new(tx, ty), mode),
        )
        .unwrap()
        .energy_pj
}

/// Fig. 12: for the same tile size, fully-cached never consumes more energy
/// than H-cached, which never consumes more than fully-recompute.
#[test]
fn fig12_mode_ordering_holds_per_tile_size() {
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    for &(tx, ty) in &[(4, 4), (16, 18), (60, 72)] {
        let fr = fsrcnn_energy(&model, tx, ty, OverlapMode::FullyRecompute);
        let hc = fsrcnn_energy(&model, tx, ty, OverlapMode::HCachedVRecompute);
        let fc = fsrcnn_energy(&model, tx, ty, OverlapMode::FullyCached);
        assert!(
            fc <= hc * 1.001,
            "tile ({tx},{ty}): fully-cached {fc} vs H-cached {hc}"
        );
        assert!(
            hc <= fr * 1.001,
            "tile ({tx},{ty}): H-cached {hc} vs recompute {fr}"
        );
    }
}

/// Fig. 12: the layer-by-layer corner (tile = full feature map) is identical
/// across overlap modes.
#[test]
fn fig12_lbl_corner_is_mode_independent() {
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let e: Vec<f64> = OverlapMode::ALL
        .iter()
        .map(|&m| fsrcnn_energy(&model, 960, 540, m))
        .collect();
    assert!((e[0] - e[1]).abs() / e[0] < 1e-9);
    assert!((e[1] - e[2]).abs() / e[1] < 1e-9);
}

/// Fig. 12: both very small and very large tiles are sub-optimal; an
/// intermediate tile wins, and the spread between best and worst is at least
/// an order of magnitude.
#[test]
fn fig12_intermediate_tiles_win_with_large_spread() {
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let tiny = fsrcnn_energy(&model, 1, 1, OverlapMode::FullyRecompute);
    let mid = fsrcnn_energy(&model, 16, 18, OverlapMode::FullyCached);
    let full = fsrcnn_energy(&model, 960, 540, OverlapMode::FullyCached);
    assert!(mid < tiny, "mid {mid} vs tiny {tiny}");
    assert!(mid < full, "mid {mid} vs full {full}");
    assert!(
        tiny.max(full) / mid > 10.0,
        "spread too small: {} / {}",
        tiny.max(full),
        mid
    );
}

/// Fig. 13: recompute overhead ordering and the fully-cached mode matching the
/// layer-by-layer MAC count exactly.
#[test]
fn fig13_mac_overhead_ordering() {
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let net = models::fsrcnn();
    let lbl_macs: u64 = net.layers().iter().map(|l| l.macs()).sum();
    let strategy = |m| DfStrategy::depth_first(TileSize::new(4, 4), m);
    let fr = model
        .evaluate_network(&net, &strategy(OverlapMode::FullyRecompute))
        .unwrap();
    let hc = model
        .evaluate_network(&net, &strategy(OverlapMode::HCachedVRecompute))
        .unwrap();
    let fc = model
        .evaluate_network(&net, &strategy(OverlapMode::FullyCached))
        .unwrap();
    assert_eq!(fc.macs, lbl_macs);
    assert!(hc.macs > fc.macs);
    assert!(fr.macs > hc.macs);
}

/// Fig. 16: depth-first scheduling gains roughly an order of magnitude over
/// single-layer scheduling for the activation-dominant FSRCNN, and still a
/// substantial factor for the weight-dominant MobileNetV1 when stacks can fall
/// back to layer-by-layer.
#[test]
fn fig16_gains_over_single_layer() {
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let fsrcnn = models::fsrcnn();
    let sl = model
        .evaluate_network(&fsrcnn, &DfStrategy::single_layer())
        .unwrap();
    let df = model
        .evaluate_network(
            &fsrcnn,
            &DfStrategy::depth_first(TileSize::new(4, 72), OverlapMode::FullyCached),
        )
        .unwrap();
    let gain = sl.energy_pj / df.energy_pj;
    assert!(
        gain > 5.0,
        "FSRCNN DF gain over SL = {gain:.2}x (paper: ~10x)"
    );
}

/// Fig. 17: the TPU-like baseline, lacking any on-chip weight buffer, barely
/// benefits from depth-first scheduling, while its DF variant (which gets a
/// weight global buffer) does.
#[test]
fn fig17_tpu_needs_weight_buffer_for_df() {
    let net = models::fsrcnn();
    let strategy = DfStrategy::depth_first(TileSize::new(60, 72), OverlapMode::FullyCached);

    let tpu = zoo::tpu_like();
    let model = DfCostModel::new(&tpu).with_fast_mapper();
    let lbl_tpu = model
        .evaluate_network(&net, &DfStrategy::layer_by_layer())
        .unwrap();
    let df_tpu = model.evaluate_network(&net, &strategy).unwrap();

    let tpu_df = zoo::tpu_like_df();
    let model_df = DfCostModel::new(&tpu_df).with_fast_mapper();
    let lbl_tpudf = model_df
        .evaluate_network(&net, &DfStrategy::layer_by_layer())
        .unwrap();
    let df_tpudf = model_df.evaluate_network(&net, &strategy).unwrap();

    let gain_baseline = lbl_tpu.energy_pj / df_tpu.energy_pj;
    let gain_df_variant = lbl_tpudf.energy_pj / df_tpudf.energy_pj;
    assert!(
        gain_df_variant > gain_baseline,
        "DF-friendly TPU variant should benefit more from DF: {gain_df_variant:.2}x vs {gain_baseline:.2}x"
    );
    assert!(
        gain_df_variant > 2.0,
        "TPU-like DF should gain substantially: {gain_df_variant:.2}x"
    );
}

/// Fig. 18(c): ignoring weight traffic pushes the optimizer to tiny tiles; for
/// a weight-dominant workload the full model's choice is substantially better.
#[test]
fn fig18_weight_blind_optimization_is_costly() {
    use defines_core::baselines::{run_baseline, BaselineKind};
    let acc = zoo::edge_tpu_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let net = models::resnet18();
    let tiles = [(2, 2), (7, 7), (28, 28), (56, 56)];
    let act_only = run_baseline(
        &model,
        &net,
        BaselineKind::ActivationsOnly,
        &tiles,
        &OverlapMode::ALL,
    )
    .unwrap();
    let full = run_baseline(
        &model,
        &net,
        BaselineKind::FullModel,
        &tiles,
        &OverlapMode::ALL,
    )
    .unwrap();
    assert!(
        full.cost.energy_pj <= act_only.cost.energy_pj,
        "full model {} must not lose to activation-only {}",
        full.cost.energy_pj,
        act_only.cost.energy_pj
    );
    // The activation-only optimizer must indeed be at least as good on its own
    // (partial) metric.
    assert!(act_only.cost.activation_energy_pj() <= full.cost.activation_energy_pj() * 1.001);
}
