//! Integration tests for the JSON workload frontend: the reference files
//! under `workloads/` load back into the exact zoo networks, file-loaded
//! networks cost bit-identically to their built-in twins, the mapping memo
//! cache is shared across the two, and malformed documents fail with errors
//! that name the offending layer.

use defines_arch::zoo;
use defines_core::{DfCostModel, Explorer, OptimizeTarget, OverlapMode};
use defines_mapping::MappingCache;
use defines_workload::{loader, models, schema, Network};
use std::path::PathBuf;

/// Absolute path of a reference file under the repository-root `workloads/`.
fn workload_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../workloads")
        .join(file)
}

fn reference_files() -> [(&'static str, Network); 6] {
    [
        ("fsrcnn.json", models::fsrcnn()),
        ("dmcnn-vd.json", models::dmcnn_vd()),
        ("mccnn.json", models::mccnn()),
        ("mobilenet-v1.json", models::mobilenet_v1()),
        ("resnet18.json", models::resnet18()),
        ("reference.json", models::reference_net()),
    ]
}

#[test]
fn reference_files_match_zoo_models_exactly() {
    for (file, expected) in reference_files() {
        let loaded =
            loader::from_json_file(workload_path(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(loaded, expected, "{file} must load the zoo network");
    }
}

#[test]
fn reference_files_are_regenerable() {
    // The checked-in files are exactly what `export-workloads` would write
    // today: export each zoo model and compare against the file on disk.
    for (file, net) in reference_files() {
        let exported = schema::to_json_pretty(&net).unwrap() + "\n";
        let on_disk = std::fs::read_to_string(workload_path(file)).unwrap();
        assert_eq!(
            on_disk, exported,
            "{file} is stale: re-run `cargo run --release --bin export-workloads`"
        );
    }
}

#[test]
fn file_loaded_fsrcnn_costs_bit_identical_to_builtin() {
    let loaded = loader::from_json_file(workload_path("fsrcnn.json")).unwrap();
    let builtin = models::fsrcnn();

    let acc = zoo::meta_proto_like_df();
    let tiles = [(4, 4), (60, 72), (960, 540)];

    let model_a = DfCostModel::new(&acc).with_fast_mapper();
    let model_b = DfCostModel::new(&acc).with_fast_mapper();
    let sweep_a = Explorer::new(&model_a)
        .sweep(&builtin, &tiles, &OverlapMode::ALL)
        .unwrap();
    let sweep_b = Explorer::new(&model_b)
        .sweep(&loaded, &tiles, &OverlapMode::ALL)
        .unwrap();
    assert_eq!(sweep_a, sweep_b, "all design points must cost identically");

    let best_a = Explorer::new(&model_a)
        .best_single_strategy(&builtin, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
        .unwrap();
    let best_b = Explorer::new(&model_b)
        .best_single_strategy(&loaded, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)
        .unwrap();
    assert_eq!(best_a, best_b);
}

#[test]
fn mapping_cache_is_shared_across_file_loaded_and_builtin_models() {
    // The memo key fingerprints the op (operator, precisions, tile dims, top
    // levels, accelerator) — not the layer or network name — so a file-loaded
    // twin of a zoo model re-uses every mapping the zoo evaluation produced.
    let loaded = loader::from_json_file(workload_path("fsrcnn.json")).unwrap();
    let builtin = models::fsrcnn();
    let acc = zoo::meta_proto_like_df();
    let cache = MappingCache::new();

    let model = DfCostModel::new(&acc)
        .with_fast_mapper()
        .with_shared_cache(cache.clone());
    let strategy = defines_core::DfStrategy::depth_first(
        defines_core::TileSize::new(60, 72),
        OverlapMode::FullyCached,
    );

    let cost_builtin = model.evaluate_network(&builtin, &strategy).unwrap();
    let misses_after_builtin = cache.stats().misses;

    let cost_loaded = model.evaluate_network(&loaded, &strategy).unwrap();
    let stats = cache.stats();

    assert_eq!(cost_builtin, cost_loaded);
    assert_eq!(
        stats.misses, misses_after_builtin,
        "file-loaded evaluation must be answered entirely from the shared cache"
    );
    assert!(stats.hits > 0);
}

#[test]
fn engine_stats_are_labelled_with_the_workload_name() {
    let loaded = loader::from_json_file(workload_path("fsrcnn.json")).unwrap();
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let stats = Explorer::new(&model)
        .sweep_streaming(
            &loaded,
            &[(60, 72)],
            &[OverlapMode::FullyCached],
            OptimizeTarget::Energy,
            |_| {},
        )
        .unwrap();
    assert_eq!(stats.label, "FSRCNN");
}

#[test]
fn malformed_documents_name_the_offending_layer() {
    // Missing edge: consumer references a producer that is never declared.
    let missing_edge = r#"{"name": "broken", "layers": [
        {"name": "in", "op": "Conv", "k": 8, "c": 3, "ox": 32, "oy": 32},
        {"name": "out", "op": "Conv", "inputs": ["hidden"], "k": 8}
    ]}"#;
    let err = loader::from_json_str(missing_edge).unwrap_err();
    assert!(err.to_string().contains("layer 'out'"), "{err}");
    assert!(
        err.to_string().contains("unknown input layer 'hidden'"),
        "{err}"
    );

    // Dim mismatch: declared input channels disagree with the producer.
    let dim_mismatch = r#"{"name": "broken", "layers": [
        {"name": "in", "op": "Conv", "k": 8, "c": 3, "ox": 32, "oy": 32},
        {"name": "out", "op": "Conv", "inputs": ["in"], "k": 8, "c": 16, "ox": 32, "oy": 32}
    ]}"#;
    let err = loader::from_json_str(dim_mismatch).unwrap_err();
    assert_eq!(
        err.to_string(),
        "layer 'out': input channels c=16 does not match producer 'in' output channels k=8"
    );

    // Unknown op.
    let unknown_op = r#"{"name": "broken", "layers": [
        {"name": "norm", "op": "BatchNorm", "k": 8, "c": 8, "ox": 32, "oy": 32}
    ]}"#;
    let err = loader::from_json_str(unknown_op).unwrap_err();
    assert_eq!(
        err.to_string(),
        "layer 'norm': unknown op 'BatchNorm' (expected Conv, DepthwiseConv, Pooling, Add)"
    );
}

#[test]
fn hand_written_network_sweeps_end_to_end() {
    // A compact bring-your-own-network document: shape inference fills the
    // channel/spatial dimensions, and the loaded network runs through the
    // full exploration stack.
    let json = r#"{
      "name": "tiny-edge-net",
      "layers": [
        {"name": "stem", "op": "Conv", "k": 8, "c": 3, "ox": 48, "oy": 48,
         "fx": 3, "fy": 3, "padding": [1, 1]},
        {"name": "dw", "op": "DepthwiseConv", "inputs": ["stem"],
         "fx": 3, "fy": 3, "padding": [1, 1]},
        {"name": "pw", "op": "Conv", "inputs": ["dw"], "k": 16},
        {"name": "head", "op": "Conv", "inputs": ["pw"], "k": 4, "fx": 3, "fy": 3}
      ]
    }"#;
    let net = loader::from_json_str(json).unwrap();
    assert_eq!(net.len(), 4);

    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let best = Explorer::new(&model)
        .best_single_strategy(
            &net,
            &[(8, 8), (48, 48)],
            &OverlapMode::ALL,
            OptimizeTarget::Energy,
        )
        .unwrap();
    assert!(best.cost.energy_pj > 0.0);
    assert!(best.cost.latency_cycles > 0.0);

    // And it round-trips through the exporter like any zoo model.
    let reloaded = loader::from_json_str(&schema::to_json_pretty(&net).unwrap()).unwrap();
    assert_eq!(reloaded, net);
}
