//! Cross-crate telemetry integration tests: multi-threaded span recording,
//! Chrome-trace JSON round-tripping through the real parser, and the
//! bit-identity guarantee — enabling tracing must not change any sweep
//! result.
//!
//! Telemetry state (enable flags, span sink, metric registry) is global, so
//! every test serializes on one lock.

use defines_core::{Explorer, OverlapMode};
use defines_telemetry::{span, SpanEvent};
use std::sync::{Mutex, MutexGuard};

static TEST_LOCK: Mutex<()> = Mutex::new(());

/// Serializes the test and leaves telemetry disabled with a clean sink,
/// whatever the previous test did.
fn telemetry_test() -> MutexGuard<'static, ()> {
    let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    defines_telemetry::set_tracing(false);
    defines_telemetry::set_metrics(false);
    defines_telemetry::clear_events();
    guard
}

#[test]
fn spans_from_many_threads_merge_without_loss() {
    let _guard = telemetry_test();
    defines_telemetry::set_tracing(true);

    const THREADS: usize = 8;
    const SPANS_PER_THREAD: usize = 250;
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            scope.spawn(move || {
                // The engine worker protocol: an explicit flush guard,
                // because a scope owner can resume before a scoped thread's
                // exit-time TLS flush has run.
                let _flush = defines_telemetry::flush_on_exit();
                for _ in 0..SPANS_PER_THREAD {
                    let _span = span!("test.work", worker = worker);
                }
            });
        }
    });

    let events = defines_telemetry::drain_events();
    defines_telemetry::set_tracing(false);

    assert_eq!(events.len(), THREADS * SPANS_PER_THREAD);
    assert!(events.iter().all(|e| e.name == "test.work"));
    // Every spawned thread got its own id, and each recorded its full batch.
    let mut threads: Vec<u32> = events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    assert_eq!(threads.len(), THREADS);
    for tid in threads {
        let per_thread = events.iter().filter(|e| e.thread == tid).count();
        assert_eq!(per_thread, SPANS_PER_THREAD);
    }
    // The per-thread worker argument survives the merge.
    let workers: std::collections::HashSet<u64> = events
        .iter()
        .map(|e| e.args.iter().find(|(k, _)| *k == "worker").unwrap().1)
        .collect();
    assert_eq!(workers.len(), THREADS);
}

/// The `search.*` telemetry counters must agree with the stats the search
/// returns, parallel path included: the per-worker stats merge is exact, so
/// the mirrored counter deltas satisfy the same accounting invariant
/// (`evaluated + pruned = selected`), and the parallel-search counters
/// (`search.subtrees`) prove the pool actually ran.
#[test]
fn search_counters_stay_consistent_with_returned_stats() {
    let _guard = telemetry_test();
    defines_telemetry::set_metrics(true);

    let acc = defines_arch::zoo::meta_proto_like_df();
    let layer = defines_workload::Layer::new(
        "c",
        defines_workload::OpType::Conv,
        defines_workload::LayerDims::conv(64, 32, 28, 28, 3, 3),
    );
    let problem = defines_mapping::SingleLayerProblem::new(&acc, &layer);
    let parallel = defines_mapping::LomaMapper::new(
        defines_mapping::MapperConfig::default().with_search_threads(4),
    );
    let sequential = defines_mapping::LomaMapper::new(defines_mapping::MapperConfig::default());

    let before = defines_telemetry::snapshot();
    let cost = parallel.optimize(&problem);
    let delta = defines_telemetry::snapshot().since(&before);
    defines_telemetry::set_metrics(false);

    let (reference, ref_stats) = sequential.optimize_with_stats(&problem);
    assert_eq!(cost, reference, "parallel optimize diverged");

    let evaluated = delta.get("search.orderings_evaluated").unwrap_or(0);
    let pruned_bound = delta.get("search.pruned_bound").unwrap_or(0);
    let pruned_symmetry = delta.get("search.pruned_symmetry").unwrap_or(0);
    assert_eq!(
        evaluated + pruned_bound + pruned_symmetry,
        ref_stats.orderings_selected,
        "mirrored counters must account for every candidate ordering: {delta:?}"
    );
    assert!(evaluated > 0, "the search evaluated at least the winner");
    assert!(
        delta.get("search.subtrees").unwrap_or(0) > 0,
        "the 4-thread search must fan out over prefix subtrees: {delta:?}"
    );
    // Steals and bound broadcasts are timing-dependent (possibly zero), but
    // the counters must exist once the parallel path has run.
    let _ = delta.get("search.steals");
    let _ = delta.get("search.bound_broadcasts");
}

#[test]
fn chrome_trace_round_trips_through_the_json_parser() {
    let _guard = telemetry_test();

    let events = vec![
        SpanEvent {
            name: "explore.sweep",
            start_us: 0.0,
            dur_us: 125.5,
            thread: 0,
            args: Vec::new(),
        },
        SpanEvent {
            name: "engine.execute",
            start_us: 10.25,
            dur_us: 50.0,
            thread: 1,
            args: vec![("point", 7)],
        },
    ];
    let text = defines_telemetry::chrome_trace(&events).to_json();
    let parsed = serde_json::from_str(&text).expect("trace must be valid JSON");

    let items = parsed
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    // 2 thread_name metadata events (one per track) + 2 span events.
    assert_eq!(items.len(), 4);
    let span = items
        .iter()
        .find(|e| e.get("name").and_then(|n| n.as_str()) == Some("engine.execute"))
        .expect("engine.execute span present");
    assert_eq!(span.get("ph").and_then(|p| p.as_str()), Some("X"));
    assert_eq!(span.get("tid").and_then(|t| t.as_u64()), Some(1));
    assert_eq!(
        span.get("args")
            .and_then(|a| a.get("point"))
            .and_then(|p| p.as_u64()),
        Some(7)
    );
    for item in items {
        assert!(item.get("pid").is_some());
        assert!(item.get("tid").is_some());
    }
}

#[test]
fn tracing_does_not_change_sweep_results() {
    let _guard = telemetry_test();

    let accelerator = defines_arch::zoo::meta_proto_like_df();
    let net = defines_workload::models::fsrcnn();
    let tiles = [(60, 72), (960, 540)];

    let model = defines_core::DfCostModel::new(&accelerator).with_fast_mapper();
    let untraced = Explorer::new(&model)
        .sweep(&net, &tiles, &OverlapMode::ALL)
        .expect("untraced sweep");

    // A fresh model for the traced run: mapping caches start cold, so the
    // `mapping.search` spans (recorded on cache misses) actually fire.
    let fresh = defines_core::DfCostModel::new(&accelerator).with_fast_mapper();
    defines_telemetry::set_tracing(true);
    defines_telemetry::set_metrics(true);
    let traced = Explorer::new(&fresh)
        .sweep(&net, &tiles, &OverlapMode::ALL)
        .expect("traced sweep");
    let events = defines_telemetry::drain_events();
    defines_telemetry::set_tracing(false);
    defines_telemetry::set_metrics(false);

    // The signature invariant: instrumentation observes the pipeline, it
    // never perturbs it.
    assert_eq!(untraced, traced);
    // And the traced run actually recorded the pipeline stages.
    for prefix in ["explore.", "engine.", "evaluate.", "mapping."] {
        assert!(
            events.iter().any(|e| e.name.starts_with(prefix)),
            "no {prefix}* span recorded"
        );
    }
}
