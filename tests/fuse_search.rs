//! The fuse-depth search (axis 3): the searched stack partition can never be
//! worse than the automatic heuristic, the DP partition solver agrees with
//! exhaustive enumeration, the automatic partitions are well-formed on
//! randomized networks, and the default tile grid follows the network's real
//! sink even for permuted-order workload files.

use defines_arch::zoo;
use defines_core::fuse::{brute_force_partition, enumerate_candidates, optimal_partition};
use defines_core::{
    DfCostModel, Explorer, FuseDepth, FusePolicy, OptimizeTarget, OverlapMode, Stack, TileSize,
};
use defines_mapping::MappingCache;
use defines_workload::{models, Layer, LayerDims, LayerId, Network, OpType};
use proptest::prelude::*;

/// A reduced tile grid for a workload: two interior points derived from the
/// largest feature map (`best_schedule` appends the full tile itself).
fn small_grid(net: &Network) -> Vec<(u64, u64)> {
    let (w, h) = net
        .layers()
        .iter()
        .map(|l| (l.dims.ox, l.dims.oy))
        .max_by_key(|&(x, y)| x * y)
        .expect("non-empty network");
    vec![
        ((w / 8).max(1), (h / 8).max(1)),
        ((w / 2).max(1), (h / 2).max(1)),
    ]
}

/// The acceptance criterion of the fuse-depth search: on every zoo workload,
/// `FusePolicy::Search` finds a schedule whose target value is at most the
/// `FuseDepth::Auto` best-combination value over the same grid and modes —
/// the candidate set contains the automatic partition's stacks by
/// construction, and the DP can only improve on any tiling of them.
#[test]
fn search_is_never_worse_than_auto_combination_on_all_zoo_workloads() {
    let acc = zoo::meta_proto_like_df();
    let cache = MappingCache::new();
    for net in [
        models::fsrcnn(),
        models::dmcnn_vd(),
        models::mccnn(),
        models::mobilenet_v1(),
        models::resnet18(),
        models::reference_net(),
    ] {
        let model = DfCostModel::new(&acc)
            .with_fast_mapper()
            .with_shared_cache(cache.clone());
        let explorer = Explorer::new(&model);
        let tiles = small_grid(&net);
        let modes = [OverlapMode::FullyRecompute, OverlapMode::FullyCached];
        let target = OptimizeTarget::Energy;
        let auto = explorer
            .best_combination(&net, &tiles, &modes, target)
            .unwrap();
        let searched = explorer
            .best_schedule(&net, &tiles, &modes, target, &FusePolicy::search())
            .unwrap();
        let auto_value = target.value(&auto.cost, &acc);
        let searched_value = target.value(&searched.cost, &acc);
        assert!(
            searched_value <= auto_value * (1.0 + 1e-9),
            "{}: searched {searched_value} worse than auto {auto_value}",
            net.name()
        );
        // The chosen partition is a valid cover: every layer exactly once,
        // in topological order.
        let covered: Vec<LayerId> = searched
            .partition()
            .iter()
            .flat_map(|s| s.layers.clone())
            .collect();
        let expected: Vec<LayerId> = net.layer_ids().collect();
        assert_eq!(covered, expected, "{}", net.name());
    }
}

fn chain_net(widths: &[u64]) -> Network {
    let mut net = Network::new("chain");
    let mut prev: Option<LayerId> = None;
    let mut side = 32u64;
    for (i, &k) in widths.iter().enumerate() {
        let c = if i == 0 { 3 } else { widths[i - 1] };
        let preds: Vec<LayerId> = prev.into_iter().collect();
        side -= 2; // 3x3 valid conv shrinks by 2
        let id = net
            .add_layer(
                Layer::new(
                    format!("l{i}"),
                    OpType::Conv,
                    LayerDims::conv(k, c, side, side, 3, 3),
                ),
                &preds,
            )
            .unwrap();
        prev = Some(id);
    }
    net
}

/// Brute-force parity on a real model: for a 4-layer chain every contiguous
/// partition is a tiling of segment spans, so exhaustively evaluating all
/// 2^(n-1) partitions (each stack with its best tile/mode choice, stacks
/// exchanging data through DRAM exactly like the search) must reproduce the
/// DP's chosen value.
#[test]
fn search_matches_exhaustive_partition_enumeration_on_a_chain() {
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let explorer = Explorer::new(&model);
    let net = chain_net(&[8, 8, 16, 8]);
    let tiles = [(8, 8), (16, 16)];
    let modes = OverlapMode::ALL;
    let target = OptimizeTarget::Energy;
    let dram = acc.hierarchy().dram_id();

    // Best value of one stack over the tile/mode candidates (the full tile
    // is a candidate too, as in the search).
    let stack_best = |layers: Vec<LayerId>| -> f64 {
        let stack = Stack::new(layers);
        let mut candidates: Vec<TileSize> = tiles
            .iter()
            .map(|&(tx, ty)| TileSize::new(tx, ty))
            .collect();
        candidates.push(TileSize::full());
        candidates
            .into_iter()
            .flat_map(|tile| modes.iter().map(move |&mode| (tile, mode)))
            .map(|(tile, mode)| {
                let cost = model.evaluate_stack(&net, &stack, tile, mode, dram, dram);
                target.stack_value(&cost, &acc)
            })
            .fold(f64::INFINITY, f64::min)
    };

    // Exhaustive minimum over all 2^(n-1) contiguous partitions.
    let n = net.len();
    let mut exhaustive = f64::INFINITY;
    for cut_mask in 0..(1u32 << (n - 1)) {
        let mut total = 0.0;
        let mut start = 0usize;
        for end in 1..=n {
            let cut_here = end == n || cut_mask & (1 << (end - 1)) != 0;
            if cut_here {
                total += stack_best((start..end).map(LayerId).collect());
                start = end;
            }
        }
        exhaustive = exhaustive.min(total);
    }

    let searched = explorer
        .best_schedule(&net, &tiles, &modes, target, &FusePolicy::search())
        .unwrap();
    let searched_value = target.value(&searched.cost, &acc);
    assert!(
        (searched_value - exhaustive).abs() <= exhaustive * 1e-9,
        "DP picked {searched_value}, exhaustive minimum is {exhaustive}"
    );
}

// DP vs brute force on synthetic candidate sets shaped like the search's
// (all contiguous spans over up to 6 segments, pseudo-random values): totals
// and chosen partitions must agree.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn dp_matches_brute_force_on_random_values(
        n in 1usize..=6,
        seed in 0u64..u64::MAX,
    ) {
        let mut spans = Vec::new();
        let mut values = Vec::new();
        let mut state = seed | 1;
        for s in 0..n {
            for e in (s + 1)..=n {
                spans.push((s, e));
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                // Coarse values make ties likely, exercising tie-breaking.
                values.push((state % 16) as f64);
            }
        }
        let (dp_chosen, dp_total) = optimal_partition(n, &spans, &values).unwrap();
        let (bf_chosen, bf_total) = brute_force_partition(n, &spans, &values).unwrap();
        prop_assert!((dp_total - bf_total).abs() < 1e-9);
        // Both tile the layer range exactly.
        let mut boundary = 0;
        for &idx in &dp_chosen {
            prop_assert_eq!(spans[idx].0, boundary);
            boundary = spans[idx].1;
        }
        prop_assert_eq!(boundary, n);
        let _ = bf_chosen;
    }
}

// Automatic partitions cover every layer exactly once, in topological order,
// on randomized chain networks with a random residual edge — for both a
// weight-buffered architecture and one without any (budget zero).
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]
    #[test]
    fn auto_partition_covers_every_layer_exactly_once(
        len in 2usize..=9,
        width_seed in 1u64..=64,
        skip_from in 0usize..=7,
    ) {
        let widths: Vec<u64> = (0..len)
            .map(|i| 4 + (width_seed.wrapping_mul(i as u64 + 1) % 64))
            .collect();
        let mut net = chain_net(&widths);
        // A residual edge makes the middle of the network branchy, removing
        // cut points; the partition must still respect the remaining ones.
        if skip_from + 2 < len {
            let side = net.layer(LayerId(skip_from + 2)).dims;
            let _ = net.add_layer(
                Layer::new("residual", OpType::Add, LayerDims::conv(side.k, side.k, side.ox, side.oy, 1, 1)),
                &[LayerId(skip_from), LayerId(skip_from + 2)],
            );
        }
        for acc in [zoo::meta_proto_like_df(), zoo::tpu_like()] {
            let stacks = defines_core::stack::partition_into_stacks(&net, &acc, &FuseDepth::Auto);
            let covered: Vec<LayerId> = stacks.iter().flat_map(|s| s.layers.clone()).collect();
            let expected: Vec<LayerId> = net.layer_ids().collect();
            prop_assert_eq!(covered, expected, "{}", acc.name());
            // Multi-layer stacks may only end at cut points of the DAG.
            let cuts = net.cut_points();
            for stack in &stacks {
                prop_assert!(
                    stack.len() == 1 || cuts.contains(&stack.last_layer()),
                    "stack ending at {} splits a branch", stack.last_layer()
                );
            }
        }
    }
}

/// The search candidate set always contains the automatic partition's stacks
/// and all single layers, on every zoo workload and architecture extreme.
#[test]
fn candidate_sets_contain_auto_stacks_and_singles() {
    for acc in [zoo::meta_proto_like_df(), zoo::tpu_like()] {
        for net in [models::fsrcnn(), models::resnet18()] {
            let candidates = enumerate_candidates(&net, &acc, usize::MAX, 1.0);
            for stack in defines_core::stack::partition_into_stacks(&net, &acc, &FuseDepth::Auto) {
                assert!(
                    candidates.iter().any(|c| c == &stack),
                    "auto stack missing on {} / {}",
                    acc.name(),
                    net.name()
                );
            }
            for l in net.layer_ids() {
                assert!(candidates
                    .iter()
                    .any(|c| c.layers.len() == 1 && c.layers[0] == l));
            }
        }
    }
}

/// Regression: the default tile grid is derived from the network's actual
/// (largest) sink layer, not from whichever layer a workload file happens to
/// list last — here a 4×4 auxiliary head appears after the 128×128 output.
#[test]
fn default_tile_grid_ignores_trailing_auxiliary_head_in_workload_file() {
    let json = r#"{
        "format": "defines-workload-v1",
        "name": "permuted",
        "layers": [
            {"name": "trunk", "op": "Conv", "inputs": [],
             "k": 8, "c": 3, "ox": 128, "oy": 128, "fx": 3, "fy": 3,
             "padding": [1, 1]},
            {"name": "main_out", "op": "Conv", "inputs": ["trunk"],
             "k": 8, "ox": 128, "oy": 128, "fx": 3, "fy": 3,
             "padding": [1, 1]},
            {"name": "aux_head", "op": "Conv", "inputs": ["trunk"],
             "k": 4, "ox": 4, "oy": 4, "fx": 1, "fy": 1,
             "stride": [32, 32]}
        ]
    }"#;
    let dir = std::env::temp_dir().join("defines-fuse-search-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("permuted.json");
    std::fs::write(&path, json).unwrap();
    let net = defines_workload::loader::from_json_file(&path).unwrap();
    // The aux head is last in insertion order…
    assert_eq!(net.layers().last().unwrap().name, "aux_head");
    // …but the grid follows the 128×128 main output.
    let grid = Explorer::default_tile_grid(&net);
    assert!(grid.contains(&(128, 128)), "grid: {grid:?}");
    assert!(
        grid.iter().any(|&(tx, ty)| tx > 4 && ty > 4),
        "grid stuck at the 4x4 aux head: {grid:?}"
    );
}
