//! End-to-end integration tests: full workloads from the model zoo evaluated
//! on full architectures from the accelerator zoo, spanning every crate of
//! the workspace.

use defines_arch::zoo;
use defines_core::{DfCostModel, DfStrategy, OverlapMode, TileSize};
use defines_workload::models;

/// Every case-study workload evaluates cleanly on every case-study
/// architecture under single-layer scheduling, with positive finite costs.
#[test]
fn all_workloads_evaluate_on_all_architectures_single_layer() {
    for acc in zoo::all_case_study_architectures() {
        let model = DfCostModel::new(&acc).with_fast_mapper();
        for net in models::case_study_workloads() {
            let cost = model
                .evaluate_network(&net, &DfStrategy::single_layer())
                .unwrap_or_else(|e| panic!("{} on {}: {e}", net.name(), acc.name()));
            assert!(cost.energy_pj.is_finite() && cost.energy_pj > 0.0);
            assert!(cost.latency_cycles.is_finite() && cost.latency_cycles > 0.0);
            assert!(cost.macs > 0);
            // Single-layer scheduling must move every intermediate feature map
            // through DRAM at least once.
            let fm_bytes: u64 = net.layers().iter().map(|l| l.output_bytes()).sum();
            assert!(
                cost.dram_traffic_bytes(&acc) >= fm_bytes as f64,
                "{} on {}",
                net.name(),
                acc.name()
            );
        }
    }
}

/// Depth-first scheduling evaluates on all architectures and never produces
/// more DRAM traffic than single-layer scheduling for an activation-dominant
/// workload.
#[test]
fn depth_first_reduces_dram_traffic_everywhere() {
    let net = models::fsrcnn();
    for acc in zoo::df_architectures() {
        let model = DfCostModel::new(&acc).with_fast_mapper();
        let sl = model
            .evaluate_network(&net, &DfStrategy::single_layer())
            .unwrap();
        let df = model
            .evaluate_network(
                &net,
                &DfStrategy::depth_first(TileSize::new(60, 72), OverlapMode::FullyCached),
            )
            .unwrap();
        assert!(
            df.dram_traffic_bytes(&acc) < sl.dram_traffic_bytes(&acc),
            "{}: DF {} vs SL {}",
            acc.name(),
            df.dram_traffic_bytes(&acc),
            sl.dram_traffic_bytes(&acc)
        );
    }
}

/// MAC counts are strategy-independent for non-recompute schedules and equal
/// to the analytical workload MAC count.
#[test]
fn mac_count_conservation() {
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    for net in [models::fsrcnn(), models::mobilenet_v1()] {
        let expected: u64 = net.layers().iter().map(|l| l.macs()).sum();
        let sl = model
            .evaluate_network(&net, &DfStrategy::single_layer())
            .unwrap();
        assert_eq!(sl.macs, expected, "{} SL", net.name());
        let lbl = model
            .evaluate_network(&net, &DfStrategy::layer_by_layer())
            .unwrap();
        assert_eq!(lbl.macs, expected, "{} LBL", net.name());
        let fc = model
            .evaluate_network(
                &net,
                &DfStrategy::depth_first(TileSize::new(16, 16), OverlapMode::FullyCached),
            )
            .unwrap();
        assert_eq!(fc.macs, expected, "{} fully-cached DF", net.name());
        // Recompute can only add MACs, never remove them.
        let fr = model
            .evaluate_network(
                &net,
                &DfStrategy::depth_first(TileSize::new(16, 16), OverlapMode::FullyRecompute),
            )
            .unwrap();
        assert!(fr.macs >= expected, "{} fully-recompute DF", net.name());
    }
}

/// Branchy networks (ResNet18) evaluate under every overlap mode and produce
/// consistent stack partitions.
#[test]
fn resnet18_depth_first_evaluation() {
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let net = models::resnet18();
    for mode in OverlapMode::ALL {
        let cost = model
            .evaluate_network(&net, &DfStrategy::depth_first(TileSize::new(14, 14), mode))
            .unwrap();
        assert!(cost.energy_pj > 0.0);
        // Every layer is covered by exactly one stack.
        let covered: usize = cost.stacks.iter().map(|s| s.stack.len()).sum();
        assert_eq!(covered, net.len());
        // Multiple stacks are needed: ResNet18's 11 MB of weights cannot fuse
        // into a single stack on a 1 MB weight buffer.
        assert!(cost.stacks.len() > 1);
    }
}

/// The depth-first model's tile accounting is exact: per stack, the tile-type
/// counts sum to the number of tiles in the grid.
#[test]
fn tile_type_counts_are_exhaustive() {
    let acc = zoo::ascend_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let net = models::mccnn();
    let cost = model
        .evaluate_network(
            &net,
            &DfStrategy::depth_first(TileSize::new(80, 45), OverlapMode::HCachedVRecompute),
        )
        .unwrap();
    for stack in &cost.stacks {
        let sum: u64 = stack.tile_types.iter().map(|t| t.count).sum();
        assert_eq!(sum, stack.num_tiles);
    }
}

/// The DepFiN-like validation setup (Fig. 11) runs end to end for the three
/// validation workloads.
#[test]
fn depfin_validation_setup_runs() {
    let acc = zoo::depfin_like();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    for net in models::validation_workloads() {
        let last = net.layers().last().unwrap();
        let strategy =
            DfStrategy::depth_first(TileSize::new(last.dims.ox, 8), OverlapMode::FullyCached);
        let cost = model.evaluate_network(&net, &strategy).unwrap();
        assert!(
            cost.energy_pj > 0.0 && cost.latency_cycles > 0.0,
            "{}",
            net.name()
        );
    }
}
