//! Integration tests for the symmetry-pruned, branch-and-bound LOMA search:
//! the pruned search must return bit-identical results to the exhaustive
//! reference scan on every problem, the integer-stride ordering sampler must
//! produce exactly the requested number of distinct orderings, and the
//! canonical cache-key statistics must surface through the sweep plumbing.

use defines_arch::zoo;
use defines_core::{DfCostModel, Explorer, OptimizeTarget, OverlapMode};
use defines_mapping::{LomaMapper, MapperConfig, Objective, SingleLayerProblem};
use defines_workload::{models, Layer, LayerDims, Network, OpType};
use proptest::prelude::*;

fn arb_problem_dims() -> impl Strategy<Value = LayerDims> {
    (
        1u64..=96, // k
        1u64..=48, // c
        1u64..=80, // ox
        1u64..=80, // oy
        prop::sample::select(vec![1u64, 2, 3, 5]),
        prop::sample::select(vec![1u64, 2, 3]),
        prop::sample::select(vec![1u64, 2]),
    )
        .prop_map(|(k, c, ox, oy, fx, fy, s)| {
            LayerDims::conv(k, c, ox, oy, fx, fy).with_stride(s, s)
        })
}

fn arb_op() -> impl Strategy<Value = OpType> {
    prop::sample::select(vec![
        OpType::Conv,
        OpType::DepthwiseConv,
        OpType::Pooling,
        OpType::Add,
    ])
}

/// Asserts the pruned search and the exhaustive reference agree bit-for-bit
/// (cost scalars, access breakdown and the tie-broken mapping) on a problem.
fn assert_parity(acc: &defines_arch::Accelerator, layer: &Layer, config: MapperConfig) {
    let mapper = LomaMapper::new(config);
    let problem = SingleLayerProblem::new(acc, layer);
    let exhaustive = mapper.optimize_exhaustive(&problem);
    let (pruned, stats) = mapper.optimize_with_stats(&problem);
    assert_eq!(
        pruned,
        exhaustive,
        "search diverged on {} / {} ({:?})",
        acc.name(),
        layer.name,
        stats
    );
    assert_eq!(
        stats.evaluated + stats.pruned_bound + stats.pruned_symmetry + stats.skipped_budget,
        stats.orderings_selected,
        "search counters must account for every candidate ordering"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The headline guarantee of the cold-path overhaul: across randomized
    /// problems, operators and objectives, the symmetry-canonicalized +
    /// branch-and-bound search returns the same `LayerCost` as the
    /// exhaustive 720-ordering scan.
    #[test]
    fn pruned_search_matches_exhaustive(
        dims in arb_problem_dims(),
        op in arb_op(),
        acc_idx in 0usize..4,
        objective in prop::sample::select(vec![
            Objective::Energy,
            Objective::Latency,
            Objective::Edp,
            Objective::DramAccess,
        ]),
    ) {
        let accs = [
            zoo::meta_proto_like_df(),
            zoo::edge_tpu_like_df(),
            zoo::tpu_like(),
            zoo::ascend_like_df(),
        ];
        let layer = Layer::new("l", op, dims);
        let config = MapperConfig::default().with_objective(objective);
        assert_parity(&accs[acc_idx], &layer, config);
    }

    /// Same parity under the sampled (`fast`) configuration, where symmetry
    /// pruning is disabled and the search walks the exact integer-stride
    /// candidate subset.
    #[test]
    fn sampled_search_matches_exhaustive(
        dims in arb_problem_dims(),
        op in arb_op(),
        max in prop::sample::select(vec![3usize, 7, 24, 48, 100]),
    ) {
        let acc = zoo::meta_proto_like_df();
        let layer = Layer::new("l", op, dims);
        let config = MapperConfig { objective: Objective::Energy, max_orderings: max, ..MapperConfig::default() };
        assert_parity(&acc, &layer, config);
    }

    /// The parallel branch-and-bound search is bit-identical to the
    /// sequential one — and therefore to the exhaustive oracle — at every
    /// thread count, across randomized problems, operators, objectives and
    /// accelerators. The winning ordering, the full cost breakdown and the
    /// stats accounting invariant must all survive work stealing.
    #[test]
    fn parallel_search_matches_sequential_and_exhaustive(
        dims in arb_problem_dims(),
        op in arb_op(),
        acc_idx in 0usize..4,
        objective in prop::sample::select(vec![
            Objective::Energy,
            Objective::Latency,
            Objective::Edp,
            Objective::DramAccess,
        ]),
    ) {
        let accs = [
            zoo::meta_proto_like_df(),
            zoo::edge_tpu_like_df(),
            zoo::tpu_like(),
            zoo::ascend_like_df(),
        ];
        let layer = Layer::new("l", op, dims);
        let config = MapperConfig::default().with_objective(objective);
        assert_parallel_parity(&accs[acc_idx], &layer, config);
    }
}

/// Asserts the parallel search returns bit-identical results to the
/// sequential search (and both to the exhaustive oracle) at thread counts
/// {1, 2, 4, 8}, and that every run satisfies the stats accounting
/// invariant. The split of `evaluated` vs `pruned_bound` may legitimately
/// differ between runs (incumbent publication timing), but the winning
/// ordering, cost scalars, access breakdown and candidate accounting must
/// not.
fn assert_parallel_parity(acc: &defines_arch::Accelerator, layer: &Layer, config: MapperConfig) {
    let problem = SingleLayerProblem::new(acc, layer);
    let sequential = LomaMapper::new(config.with_search_threads(1));
    let exhaustive = sequential.optimize_exhaustive(&problem);
    let (reference, ref_stats) = sequential.optimize_with_stats(&problem);
    assert_eq!(
        reference,
        exhaustive,
        "sequential search diverged from the exhaustive oracle on {} / {}",
        acc.name(),
        layer.name
    );
    for threads in [2usize, 4, 8] {
        let mapper = LomaMapper::new(config.with_search_threads(threads));
        let (cost, stats) = mapper.optimize_with_stats(&problem);
        assert_eq!(
            cost,
            reference,
            "parallel search diverged at {threads} threads on {} / {} ({stats:?})",
            acc.name(),
            layer.name
        );
        assert_eq!(
            stats.orderings_selected, ref_stats.orderings_selected,
            "candidate selection must not depend on the thread count"
        );
        assert_eq!(
            stats.evaluated + stats.pruned_bound + stats.pruned_symmetry + stats.skipped_budget,
            stats.orderings_selected,
            "search counters must account for every candidate at {threads} threads"
        );
    }
}

/// Parity over every layer of all six zoo workloads (the deterministic tier),
/// under both the exhaustive-width and the sampled mapper configurations.
#[test]
fn zoo_workloads_search_parity() {
    let mut nets: Vec<Network> = models::case_study_workloads();
    nets.push(models::reference_net());
    assert_eq!(nets.len(), 6, "the zoo has six workloads");
    let acc = zoo::meta_proto_like_df();
    for net in &nets {
        for layer in net.layers() {
            assert_parity(&acc, layer, MapperConfig::fast());
        }
    }
    // The exhaustive width is slower, so spot-check it on the smallest net.
    for layer in models::fsrcnn().layers() {
        assert_parity(&acc, layer, MapperConfig::default());
    }
}

/// The integer-stride sampler returns exactly `n` distinct orderings for
/// every `n` up to the full factorial — the float-stride sampler it replaced
/// could duplicate or skip entries for some `n`.
#[test]
fn sampler_yields_exactly_n_distinct_orderings_for_every_n() {
    let acc = zoo::meta_proto_like_df();
    // 6 active temporal dimensions -> 720 orderings.
    let layer = Layer::new("c", OpType::Conv, LayerDims::conv(64, 32, 28, 28, 3, 3));
    let problem = SingleLayerProblem::new(&acc, &layer);
    let all = defines_mapping::temporal::candidate_orderings(&problem, 0);
    assert_eq!(all.len(), 720);
    for n in 1..=720usize {
        let sample = defines_mapping::temporal::candidate_orderings(&problem, n);
        assert_eq!(sample.len(), n, "sample size for n = {n}");
        let distinct: std::collections::HashSet<_> = sample.iter().collect();
        assert_eq!(distinct.len(), n, "duplicate orderings for n = {n}");
        // Every sampled ordering is a member of the full enumeration.
        for order in &sample {
            assert!(all.contains(order));
        }
    }
}

/// The search is dramatically cheaper than exhaustive in evaluated orderings,
/// not just wall-clock: over the FSRCNN layers at full width, most orderings
/// are pruned.
#[test]
fn search_prunes_most_orderings_on_fsrcnn() {
    let acc = zoo::meta_proto_like_df();
    let mapper = LomaMapper::default();
    let mut evaluated = 0u64;
    let mut selected = 0u64;
    for layer in models::fsrcnn().layers() {
        let (_, stats) = mapper.optimize_with_stats(&SingleLayerProblem::new(&acc, layer));
        evaluated += stats.evaluated;
        selected += stats.orderings_selected;
    }
    assert!(
        evaluated * 3 < selected * 2,
        "expected >1/3 pruning, evaluated {evaluated} of {selected}"
    );
}

/// Canonical cache-key statistics flow through to the sweep stats: a sweep
/// over a workload with weight-less layers (pooling / add) produces canonical
/// hits, and `SweepStats` carries the cache snapshot.
#[test]
fn sweep_stats_carry_canonical_cache_hits() {
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let explorer = Explorer::new(&model).with_threads(1);
    let net = models::resnet18();
    let stats = explorer
        .sweep_streaming(
            &net,
            &[(14, 14), (28, 28)],
            &[OverlapMode::FullyCached],
            OptimizeTarget::Energy,
            |_| {},
        )
        .unwrap();
    let cache = stats.cache.expect("sweep stats carry a cache snapshot");
    assert!(cache.entries > 0);
    assert!(
        cache.canonical_hits > 0,
        "pooling/add tiles with differing weight placements must share \
         canonical cache entries: {cache:?}"
    );
    assert!(cache.hits >= cache.canonical_hits);
}
