//! Offline stand-in for [criterion](https://bheisler.github.io/criterion.rs).
//!
//! The build environment has no crates.io access, so this crate implements
//! the criterion API subset the workspace's benches use — benchmark groups,
//! `bench_function` / `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros — on top of a simple
//! wall-clock timer: one warm-up iteration, then `sample_size` timed
//! iterations, reporting min / mean / max per benchmark.
//!
//! Set `CRITERION_SAMPLE_OVERRIDE=<n>` to clamp the sample count (useful in
//! CI smoke runs).

pub use std::hint::black_box;

use std::fmt::Display;
use std::time::{Duration, Instant};

/// A benchmark identifier: `group_input` style labels.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and an input label.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id made of the input label alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { label: s }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the default number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a closure outside any group.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let sample_size = self.sample_size;
        run_benchmark(&id.into().label, sample_size, f);
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks a closure under `group/id`.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.into().label);
        run_benchmark(&label, self.sample_size, f);
    }

    /// Benchmarks a closure with an explicit input under `group/id`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        let label = format!("{}/{}", self.name, id.label);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
    }

    /// Ends the group (reporting is per-benchmark; this is a no-op kept for
    /// API compatibility).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; `iter` runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Times `f` over the configured number of samples (after one warm-up).
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        black_box(f());
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn effective_samples(requested: usize) -> usize {
    match std::env::var("CRITERION_SAMPLE_OVERRIDE") {
        Ok(v) => v
            .parse::<usize>()
            .map(|n| n.clamp(1, requested))
            .unwrap_or(requested),
        Err(_) => requested,
    }
}

fn run_benchmark(label: &str, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: effective_samples(sample_size),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        eprintln!("  {label}: no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().unwrap();
    let max = bencher.samples.iter().max().unwrap();
    eprintln!(
        "  {label}: time [{} {} {}] ({} samples)",
        format_duration(*min),
        format_duration(mean),
        format_duration(*max),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("t");
        let mut runs = 0;
        group.bench_function("noop", |b| b.iter(|| runs += 1));
        group.finish();
        assert!(runs >= 3);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
