//! Test configuration and the deterministic random generator.

/// How many cases each property test runs.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic xorshift64* generator seeded from the test name, so every
/// run of a test draws the same input sequence.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash).
    pub fn from_name(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        Self {
            state: hash | 1, // xorshift state must be non-zero
        }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// A value in `[lo, hi)`. `hi` must be greater than `lo`.
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        self.next_u64() % span
    }
}
