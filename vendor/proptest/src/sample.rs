//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A strategy picking uniformly from a fixed list of values.
pub struct Select<T: Clone> {
    items: Vec<T>,
}

/// Picks one of the given values uniformly at random.
///
/// # Panics
///
/// Panics at generation time if `items` is empty.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.items.is_empty(), "select requires at least one item");
        self.items[rng.below(self.items.len() as u64) as usize].clone()
    }
}
