//! Offline stand-in for [proptest](https://proptest-rs.github.io/proptest).
//!
//! The build environment has no crates.io access, so this crate implements
//! the proptest API subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and [`sample::select`]
//! strategies, tuple composition, the `proptest!` macro (including
//! `#![proptest_config(...)]`), and `prop_assert!` / `prop_assert_eq!`.
//!
//! Inputs are drawn from a deterministic xorshift generator seeded from the
//! test name, so failures are reproducible run to run. Shrinking is not
//! implemented — a failing case panics with its case number.

pub mod sample;
pub mod strategy;
pub mod test_runner;

/// `prop::…` paths as used by the proptest prelude (`prop::sample::select`).
pub mod prop {
    pub use crate::sample;
}

pub use strategy::Strategy;
pub use test_runner::{ProptestConfig, TestRng};

/// The common imports property tests start from.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_eq!($left, $right, $($fmt)*) };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)*) => { assert_ne!($left, $right, $($fmt)*) };
}

/// Declares property tests: each `fn name(arg in strategy, …) { body }` runs
/// `cases` times with fresh deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),* $(,)? ) $body:block )* ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config = $config;
                let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
                for __case in 0..config.cases {
                    $( let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng); )*
                    let run = || $body;
                    run();
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..=9, b in 0usize..4) {
            prop_assert!((3..=9).contains(&a));
            prop_assert!(b < 4);
        }

        #[test]
        fn map_and_select_compose(
            x in (1u64..=4, 1u64..=4).prop_map(|(p, q)| p * q),
            pick in prop::sample::select(vec![10u64, 20, 30]),
        ) {
            prop_assert!((1..=16).contains(&x));
            prop_assert!(pick % 10 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::TestRng::from_name("t");
        let mut b = crate::TestRng::from_name("t");
        let s = 0u64..100;
        for _ in 0..10 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }
}
