//! The [`Strategy`] trait and the built-in strategies this workspace uses:
//! integer ranges, tuples of strategies, and mapped strategies.

use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value from the strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with a function.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                (lo + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

/// A strategy producing a fixed value every time.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
