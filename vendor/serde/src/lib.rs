//! Offline stand-in for [serde](https://serde.rs).
//!
//! The build environment for this repository has no access to crates.io, so
//! this vendored crate provides the small serde subset the workspace relies
//! on:
//!
//! * a [`Serialize`] trait producing a JSON-oriented [`Value`] data model,
//! * a [`Deserialize`] marker trait (nothing in the workspace deserializes),
//! * `#[derive(Serialize, Deserialize)]` via the sibling `serde_derive`
//!   proc-macro crate, matching serde's externally-tagged enum encoding,
//! * implementations for the std types the workspace serializes (integers,
//!   floats, strings, tuples, `Vec`, `Option`, maps, …).
//!
//! If the real serde ever becomes available the workspace can switch back by
//! pointing the `serde`/`serde_json` workspace dependencies at crates.io; the
//! call sites are API-compatible for everything used here.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

/// A JSON-like value: the serialization data model of this vendored serde.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating-point number (non-finite values render as `null`).
    F64(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks a key up in an [`Value::Object`]; `None` for missing keys and
    /// non-object values.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Whether the value is JSON `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The value as an unsigned integer, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(n) => Some(*n),
            Value::I64(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a signed integer, if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(n) => Some(*n),
            Value::U64(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            _ => None,
        }
    }

    /// The value as a float (integers convert losslessly where possible).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(n) => Some(*n as f64),
            Value::I64(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The value as object entries (insertion-ordered key/value pairs).
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(entries) => Some(entries),
            _ => None,
        }
    }

    /// A short name of the value's JSON type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::U64(_) | Value::I64(_) | Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// Renders the value as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, None, 0);
        out
    }

    /// Renders the value as pretty-printed JSON with two-space indentation.
    pub fn to_json_pretty(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out, Some(2), 0);
        out
    }

    fn write_json(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::U64(n) => out.push_str(&n.to_string()),
            Value::I64(n) => out.push_str(&n.to_string()),
            Value::F64(x) => {
                if x.is_finite() {
                    // Match serde_json: integral floats keep a trailing ".0".
                    if *x == x.trunc() && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&x.to_string());
                    }
                } else {
                    out.push_str("null");
                }
            }
            Value::Str(s) => write_json_string(out, s),
            Value::Array(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                    items[i].write_json(out, indent, depth + 1);
                });
            }
            Value::Object(entries) => {
                write_seq(out, indent, depth, '{', '}', entries.len(), |out, i| {
                    let (k, v) = &entries[i];
                    write_json_string(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write_json(out, indent, depth + 1);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can be serialized into the [`Value`] data model.
pub trait Serialize {
    /// Converts `self` into a serialization [`Value`].
    fn to_value(&self) -> Value;
}

/// Marker trait mirroring serde's `Deserialize`.
///
/// The workspace only ever writes JSON, so this vendored stand-in does not
/// implement parsing; the trait exists so `#[derive(Deserialize)]` on the
/// workspace types keeps compiling.
pub trait Deserialize {}

// ---------------------------------------------------------------------------
// Primitive and std implementations
// ---------------------------------------------------------------------------

macro_rules! impl_ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
macro_rules! impl_ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}

impl_ser_unsigned!(u8, u16, u32, u64, usize);
impl_ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    };
}

impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Maps serialize as JSON objects when their keys serialize to strings, and
/// as arrays of `[key, value]` pairs otherwise (real serde errors on
/// non-string keys; the workspace's composite keys are more useful kept
/// structured).
fn map_to_value(entries: impl Iterator<Item = (Value, Value)>) -> Value {
    let pairs: Vec<(Value, Value)> = entries.collect();
    if pairs.iter().all(|(k, _)| matches!(k, Value::Str(_))) {
        Value::Object(
            pairs
                .into_iter()
                .map(|(k, v)| match k {
                    Value::Str(s) => (s, v),
                    _ => unreachable!(),
                })
                .collect(),
        )
    } else {
        Value::Array(
            pairs
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k, v]))
                .collect(),
        )
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for BTreeSet<T> {}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort elements by their rendered form.
        let mut items: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        items.sort_by_key(|item| item.to_json());
        Value::Array(items)
    }
}
impl<T: Deserialize> Deserialize for HashSet<T> {}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        map_to_value(self.iter().map(|(k, v)| (k.to_value(), v.to_value())))
    }
}
impl<K: Deserialize, V: Deserialize> Deserialize for BTreeMap<K, V> {}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Deterministic output: sort entries by their rendered key.
        let mut pairs: Vec<(Value, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_value(), v.to_value()))
            .collect();
        pairs.sort_by_key(|pair| pair.0.to_json());
        map_to_value(pairs.into_iter())
    }
}
impl<K: Deserialize, V: Deserialize> Deserialize for HashMap<K, V> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(1u64.to_value().to_json(), "1");
        assert_eq!((-3i32).to_value().to_json(), "-3");
        assert_eq!(true.to_value().to_json(), "true");
        assert_eq!(2.5f64.to_value().to_json(), "2.5");
        assert_eq!(2.0f64.to_value().to_json(), "2.0");
        assert_eq!(f64::NAN.to_value().to_json(), "null");
        assert_eq!("a\"b".to_value().to_json(), "\"a\\\"b\"");
    }

    #[test]
    fn containers_render() {
        assert_eq!(vec![1u64, 2].to_value().to_json(), "[1,2]");
        assert_eq!(Option::<u64>::None.to_value().to_json(), "null");
        assert_eq!((1u64, "x".to_string()).to_value().to_json(), "[1,\"x\"]");
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 7u64);
        assert_eq!(m.to_value().to_json(), "{\"k\":7}");
        let mut tk = BTreeMap::new();
        tk.insert((1u64, 2u64), 3u64);
        assert_eq!(tk.to_value().to_json(), "[[[1,2],3]]");
    }

    #[test]
    fn pretty_printing_indents() {
        let v = Value::Object(vec![("a".into(), Value::Array(vec![Value::U64(1)]))]);
        assert_eq!(v.to_json_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }
}
