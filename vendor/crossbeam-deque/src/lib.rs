//! Offline stand-in for `crossbeam-deque`: a fixed-capacity Chase-Lev
//! work-stealing deque covering the API subset the mapping-search pool uses
//! ([`Worker`], [`Stealer`], [`Steal`]).
//!
//! Like the other `vendor/` crates this is not the real library — it is a
//! minimal, dependency-free implementation whose types and method names match
//! the upstream crate so the depending code reads idiomatically.
//!
//! # Restrictions versus the real crate
//!
//! * The buffer never grows. [`Worker::with_capacity`] fixes the slot count
//!   up front and [`Worker::push`] returns the value back once the deque has
//!   accepted `capacity` items over its lifetime.
//! * The deque is *single-phase*: every push must happen before the first
//!   pop or steal. This makes every slot write-once, so a stealer never
//!   reads a slot concurrently with a write — the one hazard the real
//!   crate's epoch machinery exists to manage. The search pool's usage
//!   (seed all work units, then hand the stealers to the workers) fits this
//!   shape exactly, and the restriction is `debug_assert`ed.
//!
//! Owner pops are LIFO (depth-first over the subtree a unit expands to),
//! steals are FIFO from the opposite end (stealers take the oldest — and in
//! a branch-and-bound tree typically largest — units), the classic
//! work-stealing discipline.
//!
//! ```
//! use crossbeam_deque::{Steal, Worker};
//!
//! let w: Worker<u32> = Worker::with_capacity(8);
//! let s = w.stealer();
//! w.push(1).unwrap();
//! w.push(2).unwrap();
//! assert_eq!(s.steal(), Steal::Success(1)); // FIFO end
//! assert_eq!(w.pop(), Some(2)); // LIFO end
//! assert_eq!(s.steal(), Steal::Empty);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{fence, AtomicUsize, Ordering};
use std::sync::Arc;

/// The result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The deque was empty at the time of the attempt.
    Empty,
    /// A value was stolen.
    Success(T),
    /// The attempt lost a race with the owner or another stealer; retrying
    /// may succeed.
    Retry,
}

impl<T> Steal<T> {
    /// Returns the stolen value, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(v) => Some(v),
            _ => None,
        }
    }

    /// Whether the deque was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }
}

/// Shared state of one deque. `top` is the steal end, `bottom` the owner
/// end; both only ever increase except for the owner's transient decrement
/// in `pop`. Slots in `[top, bottom)` hold initialized values.
struct Inner<T> {
    top: AtomicUsize,
    bottom: AtomicUsize,
    /// Total values ever pushed; slots `[0, pushed)` are write-once.
    pushed: AtomicUsize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
}

// SAFETY: `Inner<T>` is a plain slot array plus atomics; sending it moves the
// owned `T` values with it, which `T: Send` permits. The `UnsafeCell`s never
// hand out references across threads without the top/bottom claim protocol.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: the slot array is only written by the owner before any concurrent
// access (single-phase restriction) and each slot is consumed at most once,
// guarded by the top/bottom claim protocol below — so shared references never
// race on a slot, even though `UnsafeCell` removes the automatic `Sync` impl.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Inner<T> {
    /// Reads slot `index` out of the buffer. Caller must hold unique claim
    /// to the slot (a successful CAS on `top`, or the owner protocol).
    // SAFETY: `index` is in-bounds and was claimed exactly once by the caller
    // (contract above), and every slot below `bottom` was initialized by
    // `push` before publication — so the read is of an initialized value and
    // no second reader can observe it.
    unsafe fn take(&self, index: usize) -> T {
        (*self.slots[index].get()).assume_init_read()
    }
}

/// The owner handle: pushes and LIFO-pops. Not cloneable — exactly one
/// thread owns each deque.
pub struct Worker<T> {
    inner: Arc<Inner<T>>,
}

/// A stealer handle: FIFO steals from the opposite end. Cloneable and
/// shareable across threads.
pub struct Stealer<T> {
    inner: Arc<Inner<T>>,
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Worker<T> {
    /// Creates a deque holding at most `capacity` values over its lifetime.
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        Worker {
            inner: Arc::new(Inner {
                top: AtomicUsize::new(0),
                bottom: AtomicUsize::new(0),
                pushed: AtomicUsize::new(0),
                slots,
            }),
        }
    }

    /// A stealer handle for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Pushes a value on the owner end. Returns the value back if the deque
    /// has exhausted its lifetime capacity.
    ///
    /// Must not run concurrently with `pop` or `steal` (single-phase
    /// restriction; see the crate docs).
    pub fn push(&self, value: T) -> Result<(), T> {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        if b == inner.slots.len() {
            return Err(value);
        }
        // Single-phase: nothing has been consumed yet, so the push cursor
        // and the bottom index agree and the slot is untouched.
        debug_assert_eq!(inner.pushed.load(Ordering::Relaxed), b);
        debug_assert_eq!(inner.top.load(Ordering::Relaxed), 0);
        // SAFETY: `b < slots.len()` (checked above) and slot `b` is above
        // `bottom`, so no stealer reads it until the Release store below
        // publishes it; the owner is the only writer (single phase).
        unsafe { (*inner.slots[b].get()).write(value) };
        inner.pushed.store(b + 1, Ordering::Relaxed);
        // Publish: a stealer that Acquire-loads the new bottom sees the
        // slot's contents.
        inner.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Pops a value from the owner (LIFO) end.
    pub fn pop(&self) -> Option<T> {
        let inner = &self.inner;
        let b = inner.bottom.load(Ordering::Relaxed);
        if inner.top.load(Ordering::Relaxed) >= b {
            return None;
        }
        let b = b - 1;
        inner.bottom.store(b, Ordering::Relaxed);
        // SeqCst pairing with the stealer's fence: either every stealer
        // sees the decremented bottom, or this thread sees their top
        // increments — never both missed, which is what rules out the
        // double-take on the last slot.
        fence(Ordering::SeqCst);
        let t = inner.top.load(Ordering::Relaxed);
        if t < b {
            // More than one value left: the slot is unambiguously ours.
            // SAFETY: `t < b` after the SeqCst fence means no stealer can
            // CAS `top` past `b` before observing our decremented `bottom`,
            // so slot `b` is claimed uniquely by this owner thread.
            return Some(unsafe { inner.take(b) });
        }
        if t == b {
            // Last value: race the stealers for it via CAS on top.
            let won = inner
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            inner.bottom.store(b + 1, Ordering::Relaxed);
            // SAFETY: the successful CAS on `top` is the unique claim on slot
            // `b` — any stealer racing for the same slot lost the CAS.
            return won.then(|| unsafe { inner.take(b) });
        }
        // Empty (a stealer took the last value first): restore bottom.
        inner.bottom.store(b + 1, Ordering::Relaxed);
        None
    }

    /// Whether the deque currently holds no values.
    pub fn is_empty(&self) -> bool {
        let inner = &self.inner;
        inner.top.load(Ordering::Relaxed) >= inner.bottom.load(Ordering::Relaxed)
    }
}

impl<T> Stealer<T> {
    /// Attempts to steal a value from the FIFO end. A [`Steal::Retry`]
    /// result means the attempt lost a race and may be retried.
    pub fn steal(&self) -> Steal<T> {
        let inner = &self.inner;
        let t = inner.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = inner.bottom.load(Ordering::Acquire);
        if t >= b {
            return Steal::Empty;
        }
        // Claim slot t before touching it. Write-once slots make the read
        // after a successful claim race-free (crate docs).
        match inner
            .top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
        {
            // SAFETY: winning the CAS on `top` claims slot `t` uniquely, and
            // the Acquire load of `bottom` above synchronized with the
            // owner's Release store, so the slot's contents are visible.
            Ok(_) => Steal::Success(unsafe { inner.take(t) }),
            Err(_) => Steal::Retry,
        }
    }

    /// Whether the deque was empty at the time of the call.
    pub fn is_empty(&self) -> bool {
        let inner = &self.inner;
        inner.top.load(Ordering::Relaxed) >= inner.bottom.load(Ordering::Relaxed)
    }
}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Drop the values still sitting in [top, bottom). Exclusive access:
        // `&mut self` means no handles remain.
        let t = *self.top.get_mut();
        let b = *self.bottom.get_mut();
        for i in t..b {
            // SAFETY: `&mut self` guarantees no concurrent handles; slots in
            // `[top, bottom)` are exactly the pushed-but-never-consumed
            // values, so each is initialized and dropped exactly once here.
            unsafe { (*self.slots[i].get()).assume_init_drop() };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::Mutex;

    #[test]
    fn owner_pops_lifo() {
        let w = Worker::with_capacity(4);
        for i in 0..4 {
            w.push(i).unwrap();
        }
        assert_eq!(w.push(9), Err(9));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(0));
        assert_eq!(w.pop(), None);
    }

    #[test]
    fn stealer_takes_fifo() {
        let w = Worker::with_capacity(4);
        for i in 0..3 {
            w.push(i).unwrap();
        }
        let s = w.stealer();
        assert!(!s.is_empty());
        assert_eq!(s.steal(), Steal::Success(0));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(s.steal(), Steal::Empty);
        assert!(s.is_empty() && w.is_empty());
        assert_eq!(Steal::Success(7).success(), Some(7));
        assert_eq!(Steal::<u32>::Empty.success(), None);
        assert!(Steal::<u32>::Empty.is_empty());
        assert!(!Steal::<u32>::Retry.is_empty());
    }

    #[test]
    fn unconsumed_values_drop_exactly_once() {
        let w = Worker::with_capacity(8);
        for i in 0..6 {
            w.push(Box::new(i)).unwrap();
        }
        assert_eq!(*w.pop().unwrap(), 5);
        assert_eq!(w.stealer().steal().success().map(|b| *b), Some(0));
        // Remaining four boxes are freed by Inner::drop (Miri/leak-checkers
        // would flag a double free or leak here).
        drop(w);
    }

    /// Concurrency: an owner popping and several stealers draining the same
    /// deque must consume every value exactly once.
    #[test]
    fn concurrent_drain_consumes_each_value_once() {
        const N: usize = 2000;
        for _ in 0..8 {
            let w = Worker::with_capacity(N);
            for i in 0..N {
                w.push(i).unwrap();
            }
            let taken: Mutex<Vec<usize>> = Mutex::new(Vec::new());
            std::thread::scope(|scope| {
                for _ in 0..3 {
                    let s = w.stealer();
                    let taken = &taken;
                    scope.spawn(move || {
                        let mut local = Vec::new();
                        loop {
                            match s.steal() {
                                Steal::Success(v) => local.push(v),
                                Steal::Retry => continue,
                                Steal::Empty => break,
                            }
                        }
                        taken.lock().unwrap().extend(local);
                    });
                }
                let mut local = Vec::new();
                while let Some(v) = w.pop() {
                    local.push(v);
                }
                taken.lock().unwrap().extend(local);
            });
            let got = taken.into_inner().unwrap();
            assert_eq!(got.len(), N, "values lost or duplicated");
            let distinct: HashSet<usize> = got.iter().copied().collect();
            assert_eq!(distinct.len(), N, "duplicated values");
        }
    }
}
