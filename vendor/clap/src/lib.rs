//! Offline stand-in for [clap](https://docs.rs/clap).
//!
//! The build environment has no crates.io access, so this crate implements
//! the clap builder-API subset the workspace's CLI uses: [`Command`] /
//! [`Arg`] construction with long flags, value names, defaults and help
//! text; boolean flags via [`ArgAction::SetTrue`]; automatic `--help`; and
//! [`ArgMatches`] lookup with [`ArgMatches::value_of`] / detailed parse
//! errors that exit with the conventional status code 2.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// What an argument does when present on the command line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArgAction {
    /// Takes one value (`--flag VALUE`).
    #[default]
    Set,
    /// Boolean flag (`--flag` sets it to true).
    SetTrue,
}

/// One command-line argument definition.
#[derive(Debug, Clone, Default)]
pub struct Arg {
    id: String,
    long: Option<String>,
    short: Option<char>,
    value_name: Option<String>,
    default_value: Option<String>,
    help: Option<String>,
    action: ArgAction,
}

impl Arg {
    /// Creates an argument with the given id.
    pub fn new(id: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            ..Self::default()
        }
    }

    /// Sets the `--long` flag name.
    pub fn long(mut self, name: impl Into<String>) -> Self {
        self.long = Some(name.into());
        self
    }

    /// Sets the `-s` short flag name.
    pub fn short(mut self, c: char) -> Self {
        self.short = Some(c);
        self
    }

    /// Sets the placeholder shown in help output.
    pub fn value_name(mut self, name: impl Into<String>) -> Self {
        self.value_name = Some(name.into());
        self
    }

    /// Sets the value used when the flag is absent.
    pub fn default_value(mut self, value: impl Into<String>) -> Self {
        self.default_value = Some(value.into());
        self
    }

    /// Sets the help text.
    pub fn help(mut self, text: impl Into<String>) -> Self {
        self.help = Some(text.into());
        self
    }

    /// Sets the argument's action (flag vs. value).
    pub fn action(mut self, action: ArgAction) -> Self {
        self.action = action;
        self
    }
}

/// A command-line interface definition.
#[derive(Debug, Clone, Default)]
pub struct Command {
    name: String,
    about: Option<String>,
    version: Option<String>,
    args: Vec<Arg>,
}

impl Command {
    /// Creates a command with the given binary name.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Sets the description shown at the top of help output.
    pub fn about(mut self, text: impl Into<String>) -> Self {
        self.about = Some(text.into());
        self
    }

    /// Sets the version printed by `--version`.
    pub fn version(mut self, v: impl Into<String>) -> Self {
        self.version = Some(v.into());
        self
    }

    /// Adds an argument definition.
    pub fn arg(mut self, arg: Arg) -> Self {
        self.args.push(arg);
        self
    }

    /// Parses `std::env::args`, exiting on `--help`, `--version` or errors.
    pub fn get_matches(self) -> ArgMatches {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        match self.try_get_matches_from_vec(&argv) {
            Ok(m) => m,
            Err(ParseOutcome::Help(text)) | Err(ParseOutcome::Version(text)) => {
                println!("{text}");
                std::process::exit(0);
            }
            Err(ParseOutcome::Error(msg)) => {
                eprintln!("error: {msg}\n\n{}", self.usage());
                std::process::exit(2);
            }
        }
    }

    /// Parses an explicit argument list (used by tests).
    ///
    /// # Errors
    ///
    /// Returns a message for unknown flags, missing values, or help/version
    /// requests.
    pub fn try_get_matches_from(
        self,
        argv: impl IntoIterator<Item = impl Into<String>>,
    ) -> Result<ArgMatches, String> {
        let argv: Vec<String> = argv.into_iter().map(Into::into).collect();
        self.try_get_matches_from_vec(&argv).map_err(|o| match o {
            ParseOutcome::Help(t) | ParseOutcome::Version(t) => t,
            ParseOutcome::Error(e) => e,
        })
    }

    fn try_get_matches_from_vec(&self, argv: &[String]) -> Result<ArgMatches, ParseOutcome> {
        let mut values: BTreeMap<String, String> = BTreeMap::new();
        let mut flags: BTreeMap<String, bool> = BTreeMap::new();
        for arg in &self.args {
            if let Some(d) = &arg.default_value {
                values.insert(arg.id.clone(), d.clone());
            }
            if arg.action == ArgAction::SetTrue {
                flags.insert(arg.id.clone(), false);
            }
        }

        let mut i = 0;
        while i < argv.len() {
            let token = &argv[i];
            if token == "--help" || token == "-h" {
                return Err(ParseOutcome::Help(self.help_text()));
            }
            if token == "--version" || token == "-V" {
                let v = self.version.clone().unwrap_or_else(|| "unknown".into());
                return Err(ParseOutcome::Version(format!("{} {v}", self.name)));
            }
            let (flag, inline_value) = match token.strip_prefix("--") {
                Some(rest) => match rest.split_once('=') {
                    Some((f, v)) => (f.to_string(), Some(v.to_string())),
                    None => (rest.to_string(), None),
                },
                None => match token.strip_prefix('-') {
                    Some(s) if s.len() == 1 => (s.to_string(), None),
                    _ => {
                        return Err(ParseOutcome::Error(format!(
                            "unexpected positional argument '{token}'"
                        )))
                    }
                },
            };
            let def = self
                .args
                .iter()
                .find(|a| {
                    a.long.as_deref() == Some(flag.as_str())
                        || (flag.len() == 1 && a.short == flag.chars().next())
                })
                .ok_or_else(|| ParseOutcome::Error(format!("unknown flag '--{flag}'")))?;
            match def.action {
                ArgAction::SetTrue => {
                    flags.insert(def.id.clone(), true);
                    i += 1;
                }
                ArgAction::Set => {
                    let value = match inline_value {
                        Some(v) => v,
                        None => {
                            i += 1;
                            argv.get(i).cloned().ok_or_else(|| {
                                ParseOutcome::Error(format!("flag '--{flag}' needs a value"))
                            })?
                        }
                    };
                    values.insert(def.id.clone(), value);
                    i += 1;
                }
            }
        }

        Ok(ArgMatches { values, flags })
    }

    fn usage(&self) -> String {
        format!(
            "Usage: {} [OPTIONS]\n\nFor details run: {} --help",
            self.name, self.name
        )
    }

    fn help_text(&self) -> String {
        let mut out = String::new();
        if let Some(about) = &self.about {
            let _ = writeln!(out, "{about}\n");
        }
        let _ = writeln!(out, "Usage: {} [OPTIONS]\n\nOptions:", self.name);
        for arg in &self.args {
            let mut left = String::from("  ");
            if let Some(s) = arg.short {
                let _ = write!(left, "-{s}, ");
            }
            if let Some(l) = &arg.long {
                let _ = write!(left, "--{l}");
            }
            if arg.action == ArgAction::Set {
                let name = arg.value_name.clone().unwrap_or_else(|| "VALUE".into());
                let _ = write!(left, " <{name}>");
            }
            let _ = write!(out, "{left:<34}");
            if let Some(h) = &arg.help {
                let _ = write!(out, "{h}");
            }
            if let Some(d) = &arg.default_value {
                let _ = write!(out, " [default: {d}]");
            }
            out.push('\n');
        }
        let _ = write!(out, "  -h, --help{:<24}Print help", "");
        out
    }
}

enum ParseOutcome {
    Help(String),
    Version(String),
    Error(String),
}

/// Parsed argument values.
#[derive(Debug, Clone, Default)]
pub struct ArgMatches {
    values: BTreeMap<String, String>,
    flags: BTreeMap<String, bool>,
}

impl ArgMatches {
    /// The value of an argument, if present (explicitly or by default).
    pub fn value_of(&self, id: &str) -> Option<&str> {
        self.values.get(id).map(String::as_str)
    }

    /// Whether a [`ArgAction::SetTrue`] flag was passed.
    pub fn get_flag(&self, id: &str) -> bool {
        self.flags.get(id).copied().unwrap_or(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmd() -> Command {
        Command::new("sweep")
            .about("test")
            .version("1.0")
            .arg(
                Arg::new("workload")
                    .long("workload")
                    .default_value("fsrcnn"),
            )
            .arg(Arg::new("tilex").long("tilex").short('x'))
            .arg(Arg::new("quiet").long("quiet").action(ArgAction::SetTrue))
    }

    #[test]
    fn defaults_flags_and_values() {
        let m = cmd()
            .try_get_matches_from(["--tilex", "60", "--quiet"])
            .unwrap();
        assert_eq!(m.value_of("workload"), Some("fsrcnn"));
        assert_eq!(m.value_of("tilex"), Some("60"));
        assert!(m.get_flag("quiet"));
    }

    #[test]
    fn equals_syntax_and_short_flags() {
        let m = cmd()
            .try_get_matches_from(["--workload=resnet18", "-x", "4"])
            .unwrap();
        assert_eq!(m.value_of("workload"), Some("resnet18"));
        assert_eq!(m.value_of("tilex"), Some("4"));
    }

    #[test]
    fn unknown_flag_is_an_error() {
        assert!(cmd().try_get_matches_from(["--nope"]).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(cmd().try_get_matches_from(["--tilex"]).is_err());
    }

    #[test]
    fn help_lists_flags() {
        let err = cmd().try_get_matches_from(["--help"]).unwrap_err();
        assert!(err.contains("--workload"));
        assert!(err.contains("default: fsrcnn"));
    }
}
