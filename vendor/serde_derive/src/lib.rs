//! Offline stand-in for serde's derive macros.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; this crate parses the derive input directly from the
//! [`proc_macro::TokenStream`]. It supports the shapes the workspace uses:
//!
//! * structs with named fields, tuple structs (newtypes serialize
//!   transparently, wider tuples as arrays), unit structs,
//! * enums with unit, tuple and struct variants, encoded externally tagged
//!   exactly like serde (`"Variant"`, `{"Variant": …}`),
//! * no generic parameters (the workspace derives none; a clear compile
//!   error is produced if one appears).
//!
//! `#[derive(Deserialize)]` emits a marker impl only — nothing in the
//! workspace parses JSON back.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (the vendored JSON-value flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => generate_serialize(&item).parse().unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => format!("impl ::serde::Deserialize for {} {{}}", item.name)
            .parse()
            .unwrap(),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

enum Shape {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum ItemKind {
    Struct(Shape),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attributes_and_visibility(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
    };
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    let kind = match keyword.as_str() {
        "struct" => ItemKind::Struct(parse_struct_shape(&tokens, &mut i)?),
        "enum" => {
            let body = match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
                other => return Err(format!("expected enum body, found {other:?}")),
            };
            ItemKind::Enum(parse_variants(body)?)
        }
        other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
    };

    Ok(Item { name, kind })
}

fn skip_attributes_and_visibility(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            // `#[...]` attribute: skip the pound and the bracket group.
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(_))) {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                // `pub(crate)` and friends carry a parenthesized group.
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

fn parse_struct_shape(tokens: &[TokenTree], i: &mut usize) -> Result<Shape, String> {
    match tokens.get(*i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            Ok(Shape::Named(named_field_names(g.stream())?))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Ok(Shape::Tuple(count_top_level_fields(g.stream())))
        }
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::Unit),
        None => Ok(Shape::Unit),
        other => Err(format!("unsupported struct body: {other:?}")),
    }
}

/// Extracts the field names of a named-field body, skipping attributes,
/// visibility and type tokens. Commas inside angle brackets (e.g.
/// `BTreeMap<K, V>`) do not terminate a field.
fn named_field_names(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut names = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected field name, found {other:?}")),
        };
        names.push(name);
        i += 1;
        // Skip `: Type` up to the next top-level comma.
        let mut angle_depth = 0i32;
        while i < tokens.len() {
            if let TokenTree::Punct(p) = &tokens[i] {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => {
                        i += 1;
                        break;
                    }
                    _ => {}
                }
            }
            i += 1;
        }
    }
    Ok(names)
}

fn count_top_level_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth = 0i32;
    let mut trailing_comma = false;
    for (idx, t) in tokens.iter().enumerate() {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    if idx == tokens.len() - 1 {
                        trailing_comma = true;
                    } else {
                        count += 1;
                    }
                }
                _ => {}
            }
        }
    }
    let _ = trailing_comma;
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attributes_and_visibility(&tokens, &mut i);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = Shape::Tuple(count_top_level_fields(g.stream()));
                i += 1;
                s
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let s = Shape::Named(named_field_names(g.stream())?);
                i += 1;
                s
            }
            _ => Shape::Unit,
        };
        // Skip an optional `= discriminant` and the separating comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn generate_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(shape) => struct_body(shape, "self"),
        ItemKind::Enum(variants) => enum_body(name, variants),
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         \tfn to_value(&self) -> ::serde::Value {{\n\
         \t\t{body}\n\
         \t}}\n\
         }}"
    )
}

fn struct_body(shape: &Shape, receiver: &str) -> String {
    match shape {
        Shape::Unit => "::serde::Value::Null".to_string(),
        Shape::Named(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("({f:?}.to_string(), ::serde::Serialize::to_value(&{receiver}.{f}))")
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
        Shape::Tuple(1) => format!("::serde::Serialize::to_value(&{receiver}.0)"),
        Shape::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&{receiver}.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
    }
}

fn enum_body(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let arm = match &v.shape {
            Shape::Unit => format!("{name}::{vname} => ::serde::Value::Str({vname:?}.to_string())"),
            Shape::Tuple(n) => {
                let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                let inner = if *n == 1 {
                    "::serde::Serialize::to_value(__f0)".to_string()
                } else {
                    let items: Vec<String> = binds
                        .iter()
                        .map(|b| format!("::serde::Serialize::to_value({b})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                };
                format!(
                    "{name}::{vname}({binds}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {inner})])",
                    binds = binds.join(", ")
                )
            }
            Shape::Named(fields) => {
                let binds = fields.join(", ");
                let entries: Vec<String> = fields
                    .iter()
                    .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                    .collect();
                format!(
                    "{name}::{vname} {{ {binds} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))])",
                    entries.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{ {} }}", arms.join(", "))
}
