//! Offline stand-in for [serde_json], rendering the vendored serde [`Value`]
//! data model as JSON text. Only the writer half is implemented — nothing in
//! the workspace parses JSON back.

pub use serde::Value;

use std::fmt;

/// Serialization error (the vendored writer is infallible, but the signature
/// mirrors serde_json so call sites using `?` keep compiling).
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON serialization error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders a serializable value as compact JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's signature.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json())
}

/// Renders a serializable value as pretty-printed JSON.
///
/// # Errors
///
/// Never fails; the `Result` mirrors serde_json's signature.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(value.to_value().to_json_pretty())
}

/// Converts a serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

#[cfg(test)]
mod tests {
    #[test]
    fn vectors_round_trip_to_text() {
        assert_eq!(super::to_string(&vec![1u64, 2, 3]).unwrap(), "[1,2,3]");
        assert!(super::to_string_pretty(&vec![1u64]).unwrap().contains("\n"));
    }
}
