//! Depth-first design-space exploration of FSRCNN (a small version of case
//! study 1): sweep tile sizes and overlap-storing modes, print the energy
//! table and the best point.
//!
//! Run with: `cargo run --release --example explore_fsrcnn`

use defines_arch::zoo;
use defines_core::{DfCostModel, Explorer, OptimizeTarget, OverlapMode};
use defines_workload::models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = models::fsrcnn();
    let accelerator = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&accelerator).with_fast_mapper();
    let explorer = Explorer::new(&model);

    // A reduced tile grid keeps this example snappy; the full Fig.-12 grid is
    // produced by the `fig12_heatmap` bench binary.
    let tile_sizes = [(4, 4), (16, 18), (60, 72), (240, 270), (960, 540)];

    for mode in OverlapMode::ALL {
        println!("\n=== {mode} ===");
        println!(
            "{:>14} {:>12} {:>18}",
            "tile (Tx,Ty)", "energy (mJ)", "latency (Mcycles)"
        );
        let results = explorer.sweep(&network, &tile_sizes, &[mode])?;
        for r in &results {
            println!(
                "{:>14} {:>12.2} {:>18.2}",
                r.strategy.tile.to_string(),
                r.cost.energy_mj(),
                r.cost.latency_mcycles()
            );
        }
    }

    let best = explorer.best_single_strategy(
        &network,
        &tile_sizes,
        &OverlapMode::ALL,
        OptimizeTarget::Energy,
    )?;
    println!(
        "\nBest energy point: {} -> {:.2} mJ, {:.2} Mcycles",
        best.strategy,
        best.cost.energy_mj(),
        best.cost.latency_mcycles()
    );
    Ok(())
}
