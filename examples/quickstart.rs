//! Quickstart: evaluate one depth-first schedule of FSRCNN on the
//! Meta-prototype-like DF accelerator and compare it against single-layer and
//! layer-by-layer scheduling.
//!
//! Run with: `cargo run --release --example quickstart`

use defines_arch::zoo;
use defines_core::{DfCostModel, DfStrategy, OverlapMode, TileSize};
use defines_workload::models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Pick a workload and an accelerator from the zoos.
    let network = models::fsrcnn();
    let accelerator = zoo::meta_proto_like_df();

    // 2. Build the cost model. `with_fast_mapper` trades a few percent of
    //    mapping quality for a much faster temporal-mapping search.
    let model = DfCostModel::new(&accelerator).with_fast_mapper();

    // 3. Describe the schedules to compare.
    let schedules = [
        ("single-layer", DfStrategy::single_layer()),
        ("layer-by-layer", DfStrategy::layer_by_layer()),
        (
            "depth-first 4x72 fully-cached",
            DfStrategy::depth_first(TileSize::new(4, 72), OverlapMode::FullyCached),
        ),
        (
            "depth-first 60x72 fully-cached",
            DfStrategy::depth_first(TileSize::new(60, 72), OverlapMode::FullyCached),
        ),
    ];

    println!(
        "{} on {} ({} MACs)",
        network.name(),
        accelerator.name(),
        accelerator.pe_array().total_macs()
    );
    println!(
        "{:<34} {:>12} {:>18} {:>12}",
        "schedule", "energy (mJ)", "latency (Mcycles)", "DRAM (MB)"
    );
    for (name, strategy) in schedules {
        let cost = model.evaluate_network(&network, &strategy)?;
        println!(
            "{:<34} {:>12.3} {:>18.2} {:>12.1}",
            name,
            cost.energy_mj(),
            cost.latency_mcycles(),
            cost.dram_traffic_bytes(&accelerator) / (1024.0 * 1024.0)
        );
    }
    Ok(())
}
