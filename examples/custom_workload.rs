//! Bring your own network: load a workload from JSON (no Rust code per
//! model), explore it, and export it back.
//!
//! Run with: `cargo run --release --example custom_workload [path.json]`
//!
//! Without an argument a small demonstration network is used; pass a path
//! (e.g. `workloads/resnet18.json`) to explore any workload document.

use defines_arch::zoo;
use defines_core::{DfCostModel, Explorer, OptimizeTarget, OverlapMode};
use defines_workload::{loader, schema};

const DEMO: &str = r#"{
  "name": "demo-edge-net",
  "layers": [
    {"name": "stem", "op": "Conv", "inputs": [],
     "k": 16, "c": 3, "ox": 128, "oy": 128,
     "fx": 3, "fy": 3, "padding": [1, 1]},
    {"name": "dw", "op": "DepthwiseConv", "inputs": ["stem"],
     "fx": 3, "fy": 3, "padding": [1, 1]},
    {"name": "pw", "op": "Conv", "inputs": ["dw"], "k": 32},
    {"name": "pool", "op": "Pooling", "inputs": ["pw"],
     "fx": 2, "fy": 2, "stride": [2, 2]},
    {"name": "head", "op": "Conv", "inputs": ["pool"], "k": 8,
     "fx": 3, "fy": 3, "padding": [1, 1]}
  ]
}"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load the network: from a file if given, else from the inline demo
    //    document. Omitted dims (dw's k/c/ox/oy, pw's c, ...) are inferred.
    let net = match std::env::args().nth(1) {
        Some(path) => loader::from_json_file(&path)?,
        None => loader::from_json_str(DEMO)?,
    };
    println!("loaded '{}' with {} layers:", net.name(), net.len());
    for id in net.layer_ids() {
        let l = net.layer(id);
        println!(
            "  {id} {:<12} {:>4} x {:<4} k={:<4} c={:<4} {}x{}",
            l.name, l.dims.ox, l.dims.oy, l.dims.k, l.dims.c, l.dims.fx, l.dims.fy
        );
    }

    // 2. Explore it exactly like a built-in model.
    let acc = zoo::meta_proto_like_df();
    let model = DfCostModel::new(&acc).with_fast_mapper();
    let explorer = Explorer::new(&model);
    let grid = Explorer::default_tile_grid(&net);
    let best =
        explorer.best_single_strategy(&net, &grid, &OverlapMode::ALL, OptimizeTarget::Energy)?;
    let (single, _) = explorer.baselines(&net)?;
    println!(
        "\nbest strategy: {}  ({:.3} mJ, {:.2}x better than single-layer)",
        best.strategy,
        best.cost.energy_mj(),
        single.energy_pj / best.cost.energy_pj
    );

    // 3. Export the (possibly shape-inferred) network as a fully explicit
    //    document — the canonical form used by workloads/*.json.
    println!(
        "\nfully explicit export:\n{}",
        schema::to_json_pretty(&net)?
    );
    Ok(())
}
