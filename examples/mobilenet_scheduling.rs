//! Scheduling a weight-dominant workload (MobileNetV1): shows why the best
//! solution mixes depth-first stacks for the early, activation-dominant layers
//! with layer-by-layer processing for the late, weight-dominant layers
//! (case study 2).
//!
//! Run with: `cargo run --release --example mobilenet_scheduling`

use defines_arch::zoo;
use defines_core::{DfCostModel, DfStrategy, Explorer, OptimizeTarget, OverlapMode, TileSize};
use defines_workload::analysis::WorkloadSummary;
use defines_workload::models;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let network = models::mobilenet_v1();
    let accelerator = zoo::meta_proto_like_df();
    let summary = WorkloadSummary::of(&network);
    println!(
        "{}: {} layers, {:.1} MB weights, {:.2} MB max feature map (weight dominant: {})",
        network.name(),
        summary.layer_count,
        summary.total_weight_bytes as f64 / (1024.0 * 1024.0),
        summary.max_feature_map_bytes as f64 / (1024.0 * 1024.0),
        summary.is_weight_dominant()
    );

    let model = DfCostModel::new(&accelerator).with_fast_mapper();
    let explorer = Explorer::new(&model);

    let sl = model.evaluate_network(&network, &DfStrategy::single_layer())?;
    let lbl = model.evaluate_network(&network, &DfStrategy::layer_by_layer())?;
    // The strategy that was best for FSRCNN in case study 1 — not a great fit
    // for MobileNetV1.
    let fsrcnn_best = model.evaluate_network(
        &network,
        &DfStrategy::depth_first(TileSize::new(4, 72), OverlapMode::FullyCached),
    )?;
    // Let every stack pick its own tile size and overlap mode.
    let tiles = [(7, 7), (14, 14), (28, 28), (56, 56), (112, 112)];
    let combo =
        explorer.best_combination(&network, &tiles, &OverlapMode::ALL, OptimizeTarget::Energy)?;

    println!(
        "\n{:<38} {:>12} {:>18}",
        "strategy", "energy (mJ)", "latency (Mcycles)"
    );
    for (name, cost) in [
        ("single-layer", &sl),
        ("layer-by-layer", &lbl),
        ("fully-cached 4x72 (FSRCNN's best)", &fsrcnn_best),
        ("best combination (per-stack)", &combo.cost),
    ] {
        println!(
            "{:<38} {:>12.3} {:>18.2}",
            name,
            cost.energy_mj(),
            cost.latency_mcycles()
        );
    }
    println!(
        "\nbest combination gain over single-layer: {:.1}x energy",
        sl.energy_pj / combo.cost.energy_pj
    );
    println!("per-stack choices (tile, mode):");
    for (i, (tile, mode)) in combo.per_stack.iter().enumerate() {
        let stack = &combo.cost.stacks[i];
        println!(
            "  stack {:>2} ({} layers): tile {} | {}",
            i + 1,
            stack.stack.len(),
            tile,
            mode
        );
    }
    Ok(())
}
