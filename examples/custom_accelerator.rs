//! Define a custom accelerator and workload from scratch and find its best
//! depth-first schedule — the "experiment customization" workflow of the
//! paper's artifact appendix.
//!
//! Run with: `cargo run --release --example custom_accelerator`

use defines_arch::{AcceleratorBuilder, MemoryLevel, Operand, SpatialUnrolling};
use defines_core::{DfCostModel, Explorer, OptimizeTarget, OverlapMode};
use defines_workload::{Dim, Layer, LayerDims, Network, OpType};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 512-MAC edge accelerator with a shared 48 KB activation local buffer,
    // a 256 KB weight buffer and a 1 MB global buffer.
    let accelerator = AcceleratorBuilder::new("my-edge-npu")
        .pe_array(
            SpatialUnrolling::from_pairs([(Dim::K, 16), (Dim::C, 8), (Dim::OX, 4)]),
            0.5,
        )
        .add_level(MemoryLevel::register("W_reg", 512, [Operand::Weight]))
        .add_level(MemoryLevel::register("O_reg", 2048, [Operand::Output]))
        .add_level(MemoryLevel::sram(
            "LB_IO",
            48 * 1024,
            [Operand::Input, Operand::Output],
        ))
        .add_level(MemoryLevel::sram("LB_W", 256 * 1024, [Operand::Weight]))
        .add_level(MemoryLevel::sram("GB", 1024 * 1024, Operand::ALL))
        .build()?;

    // A small denoising network on a 512x512 image.
    let mut network = Network::new("denoiser");
    let mut prev = None;
    let channels = [(3u64, 24u64), (24, 24), (24, 24), (24, 24), (24, 3)];
    for (i, &(c, k)) in channels.iter().enumerate() {
        let layer = Layer::new(
            format!("conv{}", i + 1),
            OpType::Conv,
            LayerDims::conv(k, c, 512, 512, 3, 3).with_padding(1, 1),
        );
        let preds: Vec<_> = prev.into_iter().collect();
        prev = Some(network.add_layer(layer, &preds)?);
    }

    let model = DfCostModel::new(&accelerator).with_fast_mapper();
    let explorer = Explorer::new(&model);
    let tiles = [(8, 8), (32, 32), (64, 64), (128, 128), (512, 512)];

    let best_energy = explorer.best_single_strategy(
        &network,
        &tiles,
        &OverlapMode::ALL,
        OptimizeTarget::Energy,
    )?;
    let best_latency = explorer.best_single_strategy(
        &network,
        &tiles,
        &OverlapMode::ALL,
        OptimizeTarget::Latency,
    )?;
    let (sl, lbl) = explorer.baselines(&network)?;

    println!("workload: {} on {}", network.name(), accelerator.name());
    println!(
        "single-layer       : {:>8.3} mJ, {:>8.2} Mcycles",
        sl.energy_mj(),
        sl.latency_mcycles()
    );
    println!(
        "layer-by-layer     : {:>8.3} mJ, {:>8.2} Mcycles",
        lbl.energy_mj(),
        lbl.latency_mcycles()
    );
    println!(
        "best DF (energy)   : {:>8.3} mJ, {:>8.2} Mcycles  <- {}",
        best_energy.cost.energy_mj(),
        best_energy.cost.latency_mcycles(),
        best_energy.strategy
    );
    println!(
        "best DF (latency)  : {:>8.3} mJ, {:>8.2} Mcycles  <- {}",
        best_latency.cost.energy_mj(),
        best_latency.cost.latency_mcycles(),
        best_latency.strategy
    );
    println!(
        "gain of best DF over single-layer: {:.1}x energy",
        sl.energy_pj / best_energy.cost.energy_pj
    );
    Ok(())
}
